//! The admission-service wire protocol: request/response batches in the
//! workspace's checksummed **wire-v2** sealed-frame envelope.
//!
//! ```text
//! frame  := u64 nonce, body, u64 fnv1a64(nonce ++ body)
//! body   := u32 count, message*
//! ```
//!
//! The envelope is byte-for-byte the `ccpi-site` idiom: the FNV-1a
//! trailer detects corruption and truncation, the echoed nonce rejects
//! stale or replayed replies. A server that cannot verify a request
//! frame answers a single [`ServerResponse::BadFrame`] under nonce 0 —
//! the client treats that as a transport-integrity failure, distinct
//! from an application-level [`ServerResponse::Error`].

use ccpi_storage::wirefmt::{self, WireError};
use ccpi_storage::{Tuple, Update};

/// One admission-service request.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerRequest {
    /// Liveness probe.
    Ping,
    /// Submit a batch of updates for admission. The reply reports, per
    /// update in order, whether it was admitted (durably logged and
    /// applied) and which constraints rejected it.
    Submit {
        /// The updates, judged and admitted in order.
        updates: Vec<Update>,
    },
    /// Read a whole relation from the latest published MVCC snapshot.
    Query {
        /// Relation name.
        pred: String,
    },
    /// Read the latest published snapshot's version counter.
    Version,
}

/// Per-update admission verdict inside [`ServerResponse::Admitted`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmitResult {
    /// Was the update admitted (fsync'd and applied)?
    pub admitted: bool,
    /// Constraints the check reported violated.
    pub violations: Vec<String>,
    /// Constraints whose outcome was unknown (an unverifiable update is
    /// not admissible).
    pub unknowns: Vec<String>,
}

/// One admission-service response.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerResponse {
    /// Reply to [`ServerRequest::Ping`].
    Pong,
    /// Reply to [`ServerRequest::Submit`]: one verdict per update, in
    /// submission order. An admitted update is durable when this frame
    /// is sent — the ack *is* the group-commit barrier.
    Admitted {
        /// Per-update verdicts.
        results: Vec<AdmitResult>,
    },
    /// Reply to [`ServerRequest::Query`]: the relation's rows as of the
    /// snapshot identified by `version`.
    Rows {
        /// Echoed relation name.
        pred: String,
        /// [`Database::version`](ccpi_storage::Database::version) of the
        /// snapshot served.
        version: u64,
        /// The rows, in sorted tuple order.
        rows: Vec<Tuple>,
    },
    /// Reply to [`ServerRequest::Version`].
    Version {
        /// The latest published snapshot's version counter.
        version: u64,
    },
    /// Application-level failure (unknown relation, admission pipeline
    /// down). The exchange itself was sound.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// The request frame failed its integrity checks; sent under nonce 0
    /// because the real nonce was inside the unverifiable seal.
    BadFrame {
        /// Human-readable cause.
        message: String,
    },
    /// The admission queue is at capacity. The submission was **not**
    /// enqueued — no part of it will be judged or logged — so resending
    /// the identical batch after a backoff is safe (unlike a transport
    /// failure mid-`Submit`, which may have landed).
    Busy {
        /// The server's configured queue depth, for diagnostics.
        depth: u32,
    },
}

fn encode_update(u: &Update, out: &mut Vec<u8>) {
    out.push(if u.is_insert() { 0 } else { 1 });
    wirefmt::encode_str(u.pred().as_str(), out);
    wirefmt::encode_tuple(u.tuple(), out);
}

fn decode_update(buf: &[u8], pos: &mut usize) -> Result<Update, WireError> {
    let kind = take_u8(buf, pos)?;
    let pred = wirefmt::decode_str(buf, pos)?;
    let tuple = wirefmt::decode_tuple(buf, pos)?;
    match kind {
        0 => Ok(Update::insert(pred, tuple)),
        1 => Ok(Update::delete(pred, tuple)),
        t => Err(WireError::BadTag(t)),
    }
}

fn encode_strings(items: &[String], out: &mut Vec<u8>) {
    wirefmt::encode_u32(items.len() as u32, out);
    for s in items {
        wirefmt::encode_str(s, out);
    }
}

fn decode_strings(buf: &[u8], pos: &mut usize) -> Result<Vec<String>, WireError> {
    let n = wirefmt::decode_u32(buf, pos)?;
    let mut items = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        items.push(wirefmt::decode_str(buf, pos)?);
    }
    Ok(items)
}

fn take_u8(buf: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    if *pos >= buf.len() {
        return Err(WireError::Truncated);
    }
    let b = buf[*pos];
    *pos += 1;
    Ok(b)
}

impl ServerRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerRequest::Ping => out.push(0),
            ServerRequest::Submit { updates } => {
                out.push(1);
                wirefmt::encode_u32(updates.len() as u32, out);
                for u in updates {
                    encode_update(u, out);
                }
            }
            ServerRequest::Query { pred } => {
                out.push(2);
                wirefmt::encode_str(pred, out);
            }
            ServerRequest::Version => out.push(3),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<ServerRequest, WireError> {
        match take_u8(buf, pos)? {
            0 => Ok(ServerRequest::Ping),
            1 => {
                let n = wirefmt::decode_u32(buf, pos)?;
                let mut updates = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    updates.push(decode_update(buf, pos)?);
                }
                Ok(ServerRequest::Submit { updates })
            }
            2 => Ok(ServerRequest::Query {
                pred: wirefmt::decode_str(buf, pos)?,
            }),
            3 => Ok(ServerRequest::Version),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl ServerResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerResponse::Pong => out.push(0),
            ServerResponse::Admitted { results } => {
                out.push(1);
                wirefmt::encode_u32(results.len() as u32, out);
                for r in results {
                    out.push(r.admitted as u8);
                    encode_strings(&r.violations, out);
                    encode_strings(&r.unknowns, out);
                }
            }
            ServerResponse::Rows {
                pred,
                version,
                rows,
            } => {
                out.push(2);
                wirefmt::encode_str(pred, out);
                wirefmt::encode_u64(*version, out);
                wirefmt::encode_rows(rows.iter(), out);
            }
            ServerResponse::Version { version } => {
                out.push(3);
                wirefmt::encode_u64(*version, out);
            }
            ServerResponse::Error { message } => {
                out.push(4);
                wirefmt::encode_str(message, out);
            }
            ServerResponse::BadFrame { message } => {
                out.push(5);
                wirefmt::encode_str(message, out);
            }
            ServerResponse::Busy { depth } => {
                out.push(6);
                wirefmt::encode_u32(*depth, out);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<ServerResponse, WireError> {
        match take_u8(buf, pos)? {
            0 => Ok(ServerResponse::Pong),
            1 => {
                let n = wirefmt::decode_u32(buf, pos)?;
                let mut results = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let admitted = match take_u8(buf, pos)? {
                        0 => false,
                        1 => true,
                        t => return Err(WireError::BadTag(t)),
                    };
                    results.push(AdmitResult {
                        admitted,
                        violations: decode_strings(buf, pos)?,
                        unknowns: decode_strings(buf, pos)?,
                    });
                }
                Ok(ServerResponse::Admitted { results })
            }
            2 => Ok(ServerResponse::Rows {
                pred: wirefmt::decode_str(buf, pos)?,
                version: wirefmt::decode_u64(buf, pos)?,
                rows: wirefmt::decode_rows(buf, pos)?,
            }),
            3 => Ok(ServerResponse::Version {
                version: wirefmt::decode_u64(buf, pos)?,
            }),
            4 => Ok(ServerResponse::Error {
                message: wirefmt::decode_str(buf, pos)?,
            }),
            5 => Ok(ServerResponse::BadFrame {
                message: wirefmt::decode_str(buf, pos)?,
            }),
            6 => Ok(ServerResponse::Busy {
                depth: wirefmt::decode_u32(buf, pos)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Seals a frame body: `u64 nonce ++ body ++ u64 fnv1a64(nonce ++ body)`.
fn seal(nonce: u64, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    wirefmt::encode_u64(nonce, &mut out);
    out.extend_from_slice(&body);
    let sum = wirefmt::fnv1a64(&out);
    wirefmt::encode_u64(sum, &mut out);
    out
}

/// Splits a sealed frame back into `(nonce, body)`, verifying the
/// checksum.
fn unseal(buf: &[u8]) -> Result<(u64, &[u8]), WireError> {
    if buf.len() < 16 {
        return Err(WireError::Truncated);
    }
    let (payload, trailer) = buf.split_at(buf.len() - 8);
    let expected = wirefmt::decode_u64(trailer, &mut 0)?;
    let actual = wirefmt::fnv1a64(payload);
    if expected != actual {
        return Err(WireError::Checksum { expected, actual });
    }
    let nonce = wirefmt::decode_u64(payload, &mut 0)?;
    Ok((nonce, &payload[8..]))
}

fn expect_end(buf: &[u8], pos: usize) -> Result<(), WireError> {
    if pos != buf.len() {
        return Err(WireError::Truncated);
    }
    Ok(())
}

/// Encodes a request batch under an exchange nonce.
pub fn encode_requests(nonce: u64, reqs: &[ServerRequest]) -> Vec<u8> {
    let mut body = Vec::new();
    wirefmt::encode_u32(reqs.len() as u32, &mut body);
    for r in reqs {
        r.encode(&mut body);
    }
    seal(nonce, body)
}

/// Decodes and verifies a request batch, returning the nonce.
pub fn decode_requests(frame: &[u8]) -> Result<(u64, Vec<ServerRequest>), WireError> {
    let (nonce, body) = unseal(frame)?;
    let mut pos = 0;
    let n = wirefmt::decode_u32(body, &mut pos)?;
    let mut reqs = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        reqs.push(ServerRequest::decode(body, &mut pos)?);
    }
    expect_end(body, pos)?;
    Ok((nonce, reqs))
}

/// Encodes a response batch under the echoed exchange nonce.
pub fn encode_responses(nonce: u64, resps: &[ServerResponse]) -> Vec<u8> {
    let mut body = Vec::new();
    wirefmt::encode_u32(resps.len() as u32, &mut body);
    for r in resps {
        r.encode(&mut body);
    }
    seal(nonce, body)
}

/// Decodes and verifies a response batch, returning the echoed nonce.
pub fn decode_responses(frame: &[u8]) -> Result<(u64, Vec<ServerResponse>), WireError> {
    let (nonce, body) = unseal(frame)?;
    let mut pos = 0;
    let n = wirefmt::decode_u32(body, &mut pos)?;
    let mut resps = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        resps.push(ServerResponse::decode(body, &mut pos)?);
    }
    expect_end(body, pos)?;
    Ok((nonce, resps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_storage::tuple;

    fn sample_requests() -> Vec<ServerRequest> {
        vec![
            ServerRequest::Ping,
            ServerRequest::Submit {
                updates: vec![
                    Update::insert("acct", tuple![1, 100]),
                    Update::delete("acct", tuple!["x", -5]),
                ],
            },
            ServerRequest::Query {
                pred: "acct".into(),
            },
            ServerRequest::Version,
        ]
    }

    fn sample_responses() -> Vec<ServerResponse> {
        vec![
            ServerResponse::Pong,
            ServerResponse::Admitted {
                results: vec![
                    AdmitResult {
                        admitted: true,
                        violations: vec![],
                        unknowns: vec![],
                    },
                    AdmitResult {
                        admitted: false,
                        violations: vec!["positive".into()],
                        unknowns: vec!["remote-ref".into()],
                    },
                ],
            },
            ServerResponse::Rows {
                pred: "acct".into(),
                version: 7,
                rows: vec![tuple![1, 100], tuple![2, 50]],
            },
            ServerResponse::Version { version: 7 },
            ServerResponse::Error {
                message: "unknown relation `nope`".into(),
            },
            ServerResponse::BadFrame {
                message: "bad request frame: checksum".into(),
            },
            ServerResponse::Busy { depth: 1024 },
        ]
    }

    #[test]
    fn requests_round_trip() {
        let reqs = sample_requests();
        let frame = encode_requests(42, &reqs);
        let (nonce, decoded) = decode_requests(&frame).unwrap();
        assert_eq!(nonce, 42);
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn responses_round_trip() {
        let resps = sample_responses();
        let frame = encode_responses(99, &resps);
        let (nonce, decoded) = decode_responses(&frame).unwrap();
        assert_eq!(nonce, 99);
        assert_eq!(decoded, resps);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_requests(&[]).is_err());
        assert!(decode_requests(&[0xff; 7]).is_err());
        assert!(decode_responses(&[0x00; 64]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Valid body plus a trailing byte, re-sealed so the checksum is
        // fine: the decoder must still reject the excess.
        let mut body = Vec::new();
        wirefmt::encode_u32(1, &mut body);
        ServerRequest::Ping.encode(&mut body);
        body.push(0xaa);
        let frame = seal(5, body);
        assert!(matches!(decode_requests(&frame), Err(WireError::Truncated)));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = encode_requests(7, &sample_requests());
        for i in 0..frame.len() {
            let mut corrupt = frame.clone();
            corrupt[i] ^= 0xff;
            assert!(
                decode_requests(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        let frame = encode_responses(8, &sample_responses());
        for i in 0..frame.len() {
            let mut corrupt = frame.clone();
            corrupt[i] ^= 0xff;
            assert!(
                decode_responses(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = encode_requests(7, &sample_requests());
        for cut in 0..frame.len() {
            assert!(
                decode_requests(&frame[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
        let frame = encode_responses(8, &sample_responses());
        for cut in 0..frame.len() {
            assert!(
                decode_responses(&frame[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn checksum_failure_reports_the_error_kind() {
        let mut frame = encode_requests(3, &[ServerRequest::Ping]);
        let mid = frame.len() / 2;
        frame[mid] ^= 0x01;
        assert!(matches!(
            decode_requests(&frame),
            Err(WireError::Checksum { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ccpi_storage::tuple;
    use proptest::prelude::*;

    fn update_strategy() -> impl Strategy<Value = Update> {
        ("[a-z]{1,8}", -100i64..100, 0i64..50, any::<bool>()).prop_map(|(pred, a, b, ins)| {
            if ins {
                Update::insert(pred, tuple![a, b])
            } else {
                Update::delete(pred, tuple![a, b])
            }
        })
    }

    fn request_strategy() -> impl Strategy<Value = ServerRequest> {
        prop_oneof![
            Just(ServerRequest::Ping),
            prop::collection::vec(update_strategy(), 0..6)
                .prop_map(|updates| ServerRequest::Submit { updates }),
            "[a-z]{1,8}".prop_map(|pred| ServerRequest::Query { pred }),
            Just(ServerRequest::Version),
        ]
    }

    fn admit_result_strategy() -> impl Strategy<Value = AdmitResult> {
        (
            any::<bool>(),
            prop::collection::vec("[a-z]{1,6}".prop_map(String::from), 0..3),
            prop::collection::vec("[a-z]{1,6}".prop_map(String::from), 0..3),
        )
            .prop_map(|(admitted, violations, unknowns)| AdmitResult {
                admitted,
                violations,
                unknowns,
            })
    }

    fn response_strategy() -> impl Strategy<Value = ServerResponse> {
        prop_oneof![
            Just(ServerResponse::Pong),
            prop::collection::vec(admit_result_strategy(), 0..4)
                .prop_map(|results| ServerResponse::Admitted { results }),
            (
                "[a-z]{1,8}",
                any::<u64>(),
                prop::collection::vec((-50i64..50, -50i64..50), 0..5)
            )
                .prop_map(|(pred, version, pairs)| ServerResponse::Rows {
                    pred,
                    version,
                    rows: pairs.into_iter().map(|(a, b)| tuple![a, b]).collect(),
                }),
            any::<u64>().prop_map(|version| ServerResponse::Version { version }),
            ".{0,40}".prop_map(|message| ServerResponse::Error { message }),
            ".{0,40}".prop_map(|message| ServerResponse::BadFrame { message }),
            any::<u32>().prop_map(|depth| ServerResponse::Busy { depth }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Any request batch round-trips through the sealed codec.
        #[test]
        fn request_batches_round_trip(
            nonce in any::<u64>(),
            reqs in prop::collection::vec(request_strategy(), 0..5),
        ) {
            let frame = encode_requests(nonce, &reqs);
            let (n, decoded) = decode_requests(&frame).unwrap();
            prop_assert_eq!(n, nonce);
            prop_assert_eq!(decoded, reqs);
        }

        /// Any response batch round-trips through the sealed codec.
        #[test]
        fn response_batches_round_trip(
            nonce in any::<u64>(),
            resps in prop::collection::vec(response_strategy(), 0..5),
        ) {
            let frame = encode_responses(nonce, &resps);
            let (n, decoded) = decode_responses(&frame).unwrap();
            prop_assert_eq!(n, nonce);
            prop_assert_eq!(decoded, resps);
        }

        /// A corrupted frame never decodes as something else: any single
        /// byte XOR'd with a non-zero mask is detected.
        #[test]
        fn corrupted_request_frames_are_rejected(
            nonce in any::<u64>(),
            reqs in prop::collection::vec(request_strategy(), 0..4),
            idx in any::<usize>(),
            mask in 1u8..=255,
        ) {
            let mut frame = encode_requests(nonce, &reqs);
            let i = idx % frame.len();
            frame[i] ^= mask;
            prop_assert!(decode_requests(&frame).is_err());
        }

        /// A truncated frame never decodes: any strict prefix is
        /// detected.
        #[test]
        fn truncated_response_frames_are_rejected(
            nonce in any::<u64>(),
            resps in prop::collection::vec(response_strategy(), 0..4),
            cut in any::<usize>(),
        ) {
            let frame = encode_responses(nonce, &resps);
            let cut = cut % frame.len();
            prop_assert!(decode_responses(&frame[..cut]).is_err());
        }
    }
}
