//! Query independence of update (§4's level-2 test).
//!
//! "Convert each constraint `C` into another constraint `C′` that says `C`
//! is violated after this update. Then, we test whether `C′` is contained
//! in the union of `C` and any other constraints that we assumed held
//! before the update." (Elkan \[1990\]; Tompa–Blakeley \[1988\]; Levy–Sagiv
//! \[1993\].)
//!
//! The test is *sound*: [`Answer::Yes`] guarantees the update cannot
//! introduce a violation of `C` on any database where `C, C₁, …, Cₙ` held.

use crate::rules::{rewrite, RewriteError, RewriteStyle};
use ccpi_arith::Solver;
use ccpi_containment::subsume::{subsumes, SubsumeError};
use ccpi_containment::Answer;
use ccpi_ir::{Atom, Comparison, Constraint, Cq, Term, Value, Var};
use ccpi_storage::{Tuple, Update};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from the independence test.
#[derive(Clone, Debug)]
pub enum IndependenceError {
    /// The rewrite step failed.
    Rewrite(RewriteError),
    /// The containment step failed.
    Subsume(SubsumeError),
}

impl fmt::Display for IndependenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndependenceError::Rewrite(e) => write!(f, "{e}"),
            IndependenceError::Subsume(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IndependenceError {}

impl From<RewriteError> for IndependenceError {
    fn from(e: RewriteError) -> Self {
        IndependenceError::Rewrite(e)
    }
}

impl From<SubsumeError> for IndependenceError {
    fn from(e: SubsumeError) -> Self {
        IndependenceError::Subsume(e)
    }
}

/// Is constraint `c` guaranteed to still hold after `update`, assuming
/// `c` and `others` all held before? Tests `C′ ⊆ C ∪ C₁ ∪ ⋯ ∪ Cₙ`.
///
/// Tries the inline rewrite first (stays closest to `C`'s class, which
/// keeps the containment test exact more often) and falls back to the
/// auxiliary form.
pub fn independent_of_update(
    c: &Constraint,
    others: &[Constraint],
    update: &Update,
    solver: Solver,
) -> Result<Answer, IndependenceError> {
    // Ground prefilter: decide the common case without touching the
    // rewrite/containment machinery (which costs ~10µs per call and sits
    // on the admission hot path). Sound, never complete: `false` only
    // falls through to the full test below.
    if update_cannot_touch(c, update) {
        return Ok(Answer::Yes);
    }
    independent_of_update_rewrite(c, others, update, solver)
}

/// The rewrite+containment half of the independence test, without the
/// ground prefilter. The stage pipeline calls this directly: its
/// pre-test stage has already done the host filtering (the prefilter's
/// exact logic), so re-running it here would be pure overhead.
pub fn independent_of_update_rewrite(
    c: &Constraint,
    others: &[Constraint],
    update: &Update,
    solver: Solver,
) -> Result<Answer, IndependenceError> {
    let mut assumed: Vec<Constraint> = Vec::with_capacity(others.len() + 1);
    assumed.push(c.clone());
    assumed.extend_from_slice(others);

    for style in [RewriteStyle::Inline, RewriteStyle::Auxiliary] {
        let rewritten = match rewrite(c, update, style) {
            Ok(r) => r,
            Err(RewriteError::TooManyRules(_)) => continue,
            Err(e) => return Err(e.into()),
        };
        // Fast path: the update does not touch the constraint at all.
        if rewritten.constraint == *c {
            return Ok(Answer::Yes);
        }
        match subsumes(&assumed, &rewritten.constraint, solver) {
            Ok(s) if s.answer.is_yes() => return Ok(Answer::Yes),
            Ok(_) => continue,
            Err(_) => continue,
        }
    }
    Ok(Answer::Unknown)
}

/// Sound constant-time-per-literal prefilter: `true` iff the updated
/// tuple provably cannot participate in any new violation of `c`.
///
/// A rule of `c` fires on an assignment of its body. After an
/// **insertion** of `t` into `p`, any assignment that did not exist
/// before must map some *positive* subgoal over `p` onto `t` (subgoals
/// over other relations are untouched, and `not p(…)` literals only lose
/// assignments when `p` grows). Dually, after a **deletion** of `t` from
/// `p`, any new assignment must newly satisfy some *negated* subgoal
/// over `p` at exactly `t` (positive subgoals only lose assignments when
/// `p` shrinks). So if `t` fails to *host* at every such subgoal — the
/// terms don't unify with `t`'s constants, or the unifier falsifies a
/// comparison whose variables it fully grounds — no rule can newly fire,
/// and the update is independent on every database where `c` held.
fn update_cannot_touch(c: &Constraint, update: &Update) -> bool {
    let pred = update.pred().as_str();
    let tuple = update.tuple();
    for rule in &c.program().rules {
        let cq = Cq::from_rule(rule);
        let hosts = if update.is_insert() {
            &cq.positives
        } else {
            &cq.negatives
        };
        for atom in hosts {
            if atom.pred.as_str() == pred
                && atom.arity() == tuple.arity()
                && tuple_can_host(atom, tuple, &cq.comparisons)
            {
                return false;
            }
        }
    }
    true
}

/// Can `tuple` be the image of `atom` in a body assignment? `true` when
/// the atom's terms unify with the tuple (constants equal, repeated
/// variables bound consistently) and no comparison that the resulting
/// binding fully grounds evaluates to false.
fn tuple_can_host(atom: &Atom, tuple: &Tuple, comparisons: &[Comparison]) -> bool {
    let mut binding: BTreeMap<&Var, &Value> = BTreeMap::new();
    for (term, value) in atom.args.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(&bound) if bound != value => return false,
                _ => {
                    binding.insert(v, value);
                }
            },
        }
    }
    let resolve = |t: &Term| -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => binding.get(v).map(|&val| val.clone()),
        }
    };
    for cmp in comparisons {
        if let (Some(a), Some(b)) = (resolve(&cmp.lhs), resolve(&cmp.rhs)) {
            if !cmp.op.eval(&a, &b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_constraint;
    use ccpi_storage::tuple;

    fn c(src: &str) -> Constraint {
        parse_constraint(src).unwrap()
    }
    fn dense() -> Solver {
        Solver::dense()
    }

    /// Example 4.1: inserting `toy` into `dept` cannot violate C1 (a
    /// referential-integrity constraint is monotone-safe under inserting
    /// into the referenced relation).
    #[test]
    fn example_4_1_insertion_is_independent() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::insert("dept", tuple!["toy"]);
        let ans = independent_of_update(&c1, &[], &upd, dense()).unwrap();
        assert!(ans.is_yes());
    }

    /// …whereas inserting an *employee* can violate C1.
    #[test]
    fn employee_insertion_is_not_independent() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::insert("emp", tuple!["jones", "toy", 50]);
        let ans = independent_of_update(&c1, &[], &upd, dense()).unwrap();
        assert!(!ans.is_yes());
    }

    /// Deleting a department may violate referential integrity.
    #[test]
    fn department_deletion_is_not_independent() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::delete("dept", tuple!["toy"]);
        let ans = independent_of_update(&c1, &[], &upd, dense()).unwrap();
        assert!(!ans.is_yes());
    }

    /// Deleting an employee cannot violate C1 (anti-monotone side).
    #[test]
    fn employee_deletion_is_independent() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::delete("emp", tuple!["jones", "shoe", 50]);
        let ans = independent_of_update(&c1, &[], &upd, dense()).unwrap();
        assert!(ans.is_yes());
    }

    /// Example 4.2's C2 (salary cap): inserting a cheap employee is safe,
    /// an expensive one is not.
    #[test]
    fn salary_cap_depends_on_inserted_value() {
        let c2 = c("panic :- emp(E,D,S) & S > 100.");
        let cheap = Update::insert("emp", tuple!["smith", "toy", 50]);
        assert!(independent_of_update(&c2, &[], &cheap, dense())
            .unwrap()
            .is_yes());
        let pricey = Update::insert("emp", tuple!["smith", "toy", 150]);
        assert!(!independent_of_update(&c2, &[], &pricey, dense())
            .unwrap()
            .is_yes());
        // Any deletion is safe for C2.
        let del = Update::delete("emp", tuple!["jones", "shoe", 50]);
        assert!(independent_of_update(&c2, &[], &del, dense())
            .unwrap()
            .is_yes());
    }

    /// Using other held constraints: if a separate constraint already
    /// forbids what the update could introduce, independence follows from
    /// the union. Here C = "no employee with salary exactly 100 in dept
    /// toy"; inserting emp(x,toy,100) violates C on its own, but the
    /// assumed constraint "no emp with salary >= 100 at all" is violated
    /// on *any* database where the new tuple would matter — its presence
    /// in the union certifies the test.
    #[test]
    fn other_constraints_strengthen_the_union() {
        let c0 = c("panic :- emp(E,toy,S) & S >= 100.");
        let stronger = c("panic :- emp(E,D,S) & S >= 50.");
        let upd = Update::insert("emp", tuple!["x", "toy", 100]);
        // Alone: not independent (the new tuple violates C directly).
        assert!(!independent_of_update(&c0, &[], &upd, dense())
            .unwrap()
            .is_yes());
        // With the stronger constraint assumed: the violation the insert
        // creates already violates `stronger` before… no — `stronger`
        // talks about the post-insert DB too. C′ (violated-after) is
        // contained in `stronger` (violated-before) only if the remaining
        // data witnesses it; the new tuple itself has S = 100 ≥ 50, but
        // that tuple is not in the pre-state. The union test must still
        // fail. (This documents the subtle direction of the test.)
        assert!(!independent_of_update(&c0, &[stronger], &upd, dense())
            .unwrap()
            .is_yes());
    }

    /// The ground prefilter decides exactly the hot admission cases: an
    /// inserted tuple whose constants falsify a bound comparison cannot
    /// host a violation, while one that satisfies it must fall through to
    /// the full test (and come back not-independent).
    #[test]
    fn ground_prefilter_matches_full_test_on_sign_constraint() {
        let pos = c("panic :- acct(I,A) & A < 0.");
        let clean = Update::insert("acct", tuple![7, 5]);
        assert!(update_cannot_touch(&pos, &clean));
        assert!(independent_of_update(&pos, &[], &clean, dense())
            .unwrap()
            .is_yes());
        let dirty = Update::insert("acct", tuple![7, -5]);
        assert!(!update_cannot_touch(&pos, &dirty));
        assert!(!independent_of_update(&pos, &[], &dirty, dense())
            .unwrap()
            .is_yes());
    }

    /// Repeated variables and constants in the hosting atom both gate the
    /// prefilter: `p(X,X)` rejects a (1,2) tuple, `p(0,Y)` rejects (1,2),
    /// and a half-bound comparison (`A < B` with `B` free) must NOT let
    /// the prefilter conclude independence.
    #[test]
    fn ground_prefilter_unification_and_partial_bindings() {
        let rep = c("panic :- p(X,X).");
        assert!(update_cannot_touch(
            &rep,
            &Update::insert("p", tuple![1, 2])
        ));
        assert!(!update_cannot_touch(
            &rep,
            &Update::insert("p", tuple![3, 3])
        ));

        let konst = c("panic :- p(0,Y).");
        assert!(update_cannot_touch(
            &konst,
            &Update::insert("p", tuple![1, 2])
        ));
        assert!(!update_cannot_touch(
            &konst,
            &Update::insert("p", tuple![0, 2])
        ));

        // B is bound by another subgoal, not by the hosting atom: the
        // comparison is only half-ground, so hosting stays possible.
        let half = c("panic :- acct(I,A) & lim(B) & A > B.");
        assert!(!update_cannot_touch(
            &half,
            &Update::insert("acct", tuple![1, 2])
        ));
    }

    /// Deletions mirror insertions through the negated subgoals: deleting
    /// from a predicate that occurs only positively is independent, while
    /// deleting a tuple that a negated subgoal could newly match is not.
    #[test]
    fn ground_prefilter_deletion_side() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        assert!(update_cannot_touch(
            &c1,
            &Update::delete("emp", tuple!["jones", "toy", 50])
        ));
        assert!(!update_cannot_touch(
            &c1,
            &Update::delete("dept", tuple!["toy"])
        ));
    }

    #[test]
    fn unrelated_update_is_trivially_independent() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::insert("salRange", tuple!["toy", 10, 20]);
        assert!(independent_of_update(&c1, &[], &upd, dense())
            .unwrap()
            .is_yes());
    }

    /// The paper's two-sided salary-range constraint (Example 2.3):
    /// inserting a salRange row can violate it, deleting one cannot…
    /// actually deleting CAN make an employee lose its range? No: the
    /// constraint only fires on employees *with* a matching salRange row,
    /// so deleting a row can only remove potential violations.
    #[test]
    fn salary_range_union_constraint() {
        let c3 = c("panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.\n\
             panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.");
        let del = Update::delete("salRange", tuple!["toy", 10, 20]);
        assert!(independent_of_update(&c3, &[], &del, dense())
            .unwrap()
            .is_yes());
        let ins = Update::insert("salRange", tuple!["toy", 10, 20]);
        assert!(!independent_of_update(&c3, &[], &ins, dense())
            .unwrap()
            .is_yes());
    }
}
