//! # `ccpi-bench` — shared fixtures for benchmarks and experiments
//!
//! The Criterion benches (one per experiment in DESIGN.md §8) and the
//! `experiments` table binary share the workload constructions here, so
//! that the numbers in EXPERIMENTS.md and the bench reports come from
//! identical inputs.

use ccpi_ir::Cq;
use ccpi_localtest::Cqc;
use ccpi_parser::parse_cq;
use ccpi_storage::{tuple, Database, Locality, Relation};

pub mod chaos;
pub mod crash;
pub mod delta_bench;
pub mod pretest_bench;
pub mod server_bench;
pub mod shard_bench;
pub mod throughput;

/// The forbidden-intervals CQC of Example 5.3 (local predicate `l`).
pub fn forbidden_intervals() -> Cqc {
    let cq = parse_cq("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").expect("parses");
    Cqc::with_local(cq, "l").expect("valid CQC")
}

/// The same constraint as a raw CQ.
pub fn forbidden_intervals_cq() -> Cq {
    parse_cq("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").expect("parses")
}

/// A database holding `windows` local windows and `remote` remote points,
/// none of the points inside any window (so the constraint holds).
pub fn interval_database(windows: &Relation, remote_points: usize) -> Database {
    let mut db = Database::new();
    db.declare("l", 2, Locality::Local).unwrap();
    db.declare("r", 1, Locality::Remote).unwrap();
    let mut max_hi = 0i64;
    for w in windows.iter() {
        max_hi = max_hi.max(w[1].as_int().unwrap_or(0));
        db.insert("l", w.clone()).unwrap();
    }
    // Remote points safely above every window.
    for k in 0..remote_points {
        db.insert("r", tuple![max_hi + 1 + k as i64]).unwrap();
    }
    db
}

/// An arithmetic-free CQC whose remote part has `k` subgoals over the
/// same predicate — drives the Theorem 5.3 plan size exponentially.
pub fn duplicated_remote_cqc(k: usize) -> Cqc {
    let remotes: Vec<String> = (0..k).map(|i| format!("r(V{},W{})", i % 2, i)).collect();
    let src = format!("panic :- l(V0,V1) & {}.", remotes.join(" & "));
    Cqc::with_local(parse_cq(&src).expect("parses"), "l").expect("valid CQC")
}
