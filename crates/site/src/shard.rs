//! N-shard partitioned checking: route each update to its owning shard, run
//! the full compiled [`StagePipeline`](ccpi::StagePlan) against that shard's
//! *fragment*, and escalate to the cross-shard batch protocol only when
//! locality genuinely fails.
//!
//! This generalizes [`DistributedManager`](crate::DistributedManager)'s fixed
//! two-site split: under a [`Partitioning`], "local relation" (paper §5)
//! means *my shard's fragment*. Each [`ShardNode`] owns two managers over two
//! views of the same fragment:
//!
//! * the **fragment view** — every relation `Local`, partitioned relations
//!   holding only owned tuples, replicated relations in full. All checks
//!   start here and touch no wire.
//! * the **escalation view** — partitioned relations declared `Remote` and
//!   empty, replicated relations `Local` in full. Only constraints classified
//!   [`ShardScope::CrossShard`] are registered here; when one of their
//!   fragment verdicts is not final ([`fragment_verdict_final`]), the update
//!   re-runs against this view with a [`FanoutSource`] that hydrates each
//!   partitioned relation as the union of every peer fragment (wire-v2
//!   frames, retry taxonomy and all) plus the local one — an exact global
//!   check.
//!
//! Constraints classified [`ShardScope::FragmentLocal`] (the co-partitioned
//! common case) settle *every* verdict — including `Violated` — on the
//! fragment, so the common path costs zero cross-shard messages; that is the
//! measured point of experiment E15.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ccpi::prelude::*;
use ccpi::sharding::{constraint_scope, fragment_verdict_final, ShardScope};
use ccpi::ManagerError;
use ccpi_storage::{Partitioning, StorageError};

use crate::client::SiteClient;
use crate::server::{RemoteSite, ServerHandle};
use crate::transport::{ChannelTransport, TcpTransport};

/// One shard's checking state: fragment manager, escalation manager, and
/// clients to every peer shard.
struct ShardNode {
    /// Fragment view: everything local, partitioned relations filtered to
    /// this shard's tuples.
    frag: ConstraintManager,
    /// Escalation view: partitioned relations remote/empty; holds only the
    /// `CrossShard`-scope constraints.
    esc: ConstraintManager,
    /// `peers[j]` talks to shard `j`'s fragment server (`None` at our own
    /// index).
    peers: Vec<Option<SiteClient>>,
}

/// Hydrates a partitioned relation as *own fragment ∪ all peer fragments*.
///
/// Completeness is all-or-nothing: if any peer is unreachable the whole
/// fetch fails, because a partial union would let stage 4 read absence from
/// rows it merely failed to receive. The manager then degrades exactly the
/// updates that needed the relation to `Unknown(RemoteUnavailable)`.
struct FanoutSource<'a> {
    peers: &'a mut [Option<SiteClient>],
    own: &'a Database,
}

impl RemoteSource for FanoutSource<'_> {
    fn fetch_relation(&mut self, pred: &str) -> Result<Vec<Tuple>, RemoteError> {
        let mut all: Vec<Tuple> = self
            .own
            .relation(pred)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default();
        for client in self.peers.iter_mut().flatten() {
            let mut batches = client.scan_many(&[pred])?;
            all.append(&mut batches.pop().unwrap_or_default());
        }
        Ok(all)
    }

    fn wire_stats(&self) -> WireStats {
        let snaps: Vec<WireStats> = self
            .peers
            .iter()
            .flatten()
            .map(|c| c.metrics().snapshot())
            .collect();
        WireStats::merged(&snaps)
    }
}

/// The verdicts for one update under the sharded protocol.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shards that ran the fragment check (the single owner for a
    /// partitioned predicate, every shard for a replicated one).
    pub shards: Vec<usize>,
    /// Final outcome per constraint.
    pub outcomes: Vec<(String, Outcome)>,
    /// Constraints whose verdict came from the cross-shard protocol rather
    /// than a fragment-final stage.
    pub escalated: Vec<String>,
    /// Wire counters attributable to this check (all zero when nothing
    /// escalated).
    pub wire: WireStats,
}

impl ShardReport {
    /// The outcome recorded for constraint `name`.
    pub fn outcome(&self, name: &str) -> Option<&Outcome> {
        self.outcomes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, o)| o)
    }

    /// `true` when every constraint holds.
    pub fn all_hold(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| matches!(o, Outcome::Holds(_)))
    }
}

/// Errors from the sharded manager.
#[derive(Debug)]
pub enum ShardError {
    /// Storage-level failure while building fragments or applying updates.
    Storage(StorageError),
    /// Constraint registration / checking failure.
    Manager(ManagerError),
    /// Network setup failure (TCP topology only).
    Io(std::io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Storage(e) => write!(f, "storage: {e}"),
            ShardError::Manager(e) => write!(f, "manager: {e}"),
            ShardError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<StorageError> for ShardError {
    fn from(e: StorageError) -> Self {
        ShardError::Storage(e)
    }
}

impl From<ManagerError> for ShardError {
    fn from(e: ManagerError) -> Self {
        ShardError::Manager(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// A partition-aware constraint manager over N shards.
///
/// Routes each update to its owning shard(s), checks against the fragment
/// first, and escalates through real wire clients only when a verdict is not
/// fragment-final. See the module docs for the soundness story.
pub struct ShardedManager {
    parts: Partitioning,
    nodes: Vec<ShardNode>,
    /// Compile-time scope per registered constraint.
    scopes: BTreeMap<String, ShardScope>,
    /// Each shard's fragment as served to peers (kept in lock-step with the
    /// node's own fragment view by [`apply`](Self::apply)).
    site_dbs: Vec<Arc<Mutex<Database>>>,
    /// The fragment servers themselves (channel mode keeps them alive; TCP
    /// mode also records listener handles for shutdown).
    _sites: Vec<RemoteSite>,
    tcp_handles: Vec<ServerHandle>,
    /// Updates that needed the cross-shard protocol so far.
    escalations: u64,
}

impl ShardedManager {
    /// Builds an N-shard deployment in one process, fragments wired to each
    /// other over in-process channel transports (wire-v2 frames end to end).
    pub fn colocated(db: &Database, parts: Partitioning) -> Result<ShardedManager, ShardError> {
        Self::build(db, parts, false)
    }

    /// Like [`colocated`](Self::colocated), but every fragment server
    /// listens on a real TCP socket (`127.0.0.1:0`) and peers dial it — the
    /// deployment shape of one shard per machine, collapsed into a test
    /// process.
    pub fn colocated_tcp(db: &Database, parts: Partitioning) -> Result<ShardedManager, ShardError> {
        Self::build(db, parts, true)
    }

    fn build(db: &Database, parts: Partitioning, tcp: bool) -> Result<ShardedManager, ShardError> {
        let n = parts.shards();
        let mut sites = Vec::with_capacity(n);
        let mut site_dbs = Vec::with_capacity(n);
        for k in 0..n {
            let site = RemoteSite::new(parts.fragment(db, k)?);
            site_dbs.push(site.database());
            sites.push(site);
        }
        let mut tcp_handles = Vec::new();
        let mut addrs = Vec::new();
        if tcp {
            for site in &sites {
                let handle = site.serve_tcp("127.0.0.1:0")?;
                addrs.push(handle.addr());
                tcp_handles.push(handle);
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for k in 0..n {
            let mut peers = Vec::with_capacity(n);
            for (j, site) in sites.iter().enumerate() {
                if j == k {
                    peers.push(None);
                } else if tcp {
                    peers.push(Some(SiteClient::new(TcpTransport::new(addrs[j]))));
                } else {
                    let (transport, end) = ChannelTransport::pair();
                    site.serve_channel(end);
                    peers.push(Some(SiteClient::new(transport)));
                }
            }
            nodes.push(ShardNode {
                frag: ConstraintManager::new(parts.fragment(db, k)?),
                esc: ConstraintManager::new(parts.escalation_view(db, k)?),
                peers,
            });
        }
        Ok(ShardedManager {
            parts,
            nodes,
            scopes: BTreeMap::new(),
            site_dbs,
            _sites: sites,
            tcp_handles,
            escalations: 0,
        })
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.parts.shards()
    }

    /// The partitioning in force.
    pub fn partitioning(&self) -> &Partitioning {
        &self.parts
    }

    /// Registers a constraint on every shard. Its [`ShardScope`] is decided
    /// here, at compile time: `FragmentLocal` constraints are registered on
    /// the fragment managers only (they can never need a remote fragment);
    /// `CrossShard` ones are additionally registered on the escalation
    /// managers.
    pub fn add_constraint(&mut self, name: &str, source: &str) -> Result<ShardScope, ShardError> {
        let constraint =
            parse_constraint(source).map_err(|e| ShardError::Manager(ManagerError::Parse(e)))?;
        let scope = constraint_scope(&constraint, &self.parts);
        for node in &mut self.nodes {
            node.frag.add_constraint(name, source)?;
            if scope == ShardScope::CrossShard {
                node.esc.add_constraint(name, source)?;
            }
        }
        self.scopes.insert(name.to_string(), scope);
        Ok(scope)
    }

    /// The compile-time scope assigned to constraint `name`.
    pub fn scope(&self, name: &str) -> Option<ShardScope> {
        self.scopes.get(name).copied()
    }

    /// Checks one update without applying it.
    pub fn check_update(&mut self, update: &Update) -> Result<ShardReport, ShardError> {
        let shards = self.parts.owners(update.pred().as_str(), update.tuple());

        // Fragment pass: exact for FragmentLocal scopes, advisory otherwise.
        // For replicated predicates every shard checks its own fragment and
        // the worst verdict wins (closure puts every witness in *some*
        // fragment).
        let mut outcomes: Vec<(String, Outcome)> = Vec::new();
        let mut needs_escalation = false;
        for (i, &k) in shards.iter().enumerate() {
            let report = self.nodes[k].frag.check_update(update)?;
            if i == 0 {
                outcomes = report.outcomes;
                continue;
            }
            for (slot, (name, o)) in outcomes.iter_mut().zip(report.outcomes) {
                debug_assert_eq!(slot.0, name);
                slot.1 = worst(slot.1, o);
            }
        }
        let mut escalate: Vec<String> = Vec::new();
        for (name, outcome) in &outcomes {
            let scope = self
                .scopes
                .get(name)
                .copied()
                .unwrap_or(ShardScope::CrossShard);
            if !fragment_verdict_final(scope, outcome) {
                escalate.push(name.clone());
                needs_escalation = true;
            }
        }

        let mut wire = WireStats::default();
        if needs_escalation {
            self.escalations += 1;
            // Any single node's escalation view is globally exact; use the
            // first checking shard's.
            let report = Self::escalate(&mut self.nodes[shards[0]], update)?;
            wire = report.wire;
            for name in &escalate {
                let fixed = report
                    .outcome(name)
                    .expect("escalating constraint registered on escalation manager");
                if let Some(slot) = outcomes.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = fixed;
                }
            }
        }

        Ok(ShardReport {
            shards,
            outcomes,
            escalated: escalate,
            wire,
        })
    }

    fn escalate(node: &mut ShardNode, update: &Update) -> Result<CheckReport, ShardError> {
        let ShardNode { frag, esc, peers } = node;
        let mut source = FanoutSource {
            peers,
            own: frag.database(),
        };
        Ok(esc.check_update_with_remote(update, &mut source)?)
    }

    /// Applies an (already admitted) update to every view that stores its
    /// predicate: the owner's fragment + served fragment for a partitioned
    /// relation; every shard's fragment, escalation view and served fragment
    /// for a replicated one.
    pub fn apply(&mut self, update: &Update) -> Result<(), ShardError> {
        let pred = update.pred().as_str();
        for k in self.parts.owners(pred, update.tuple()) {
            self.nodes[k].frag.database_mut().apply(update)?;
            if !self.parts.is_partitioned(pred) {
                self.nodes[k].esc.database_mut().apply(update)?;
            }
            self.site_dbs[k]
                .lock()
                .expect("fragment server lock")
                .apply(update)?;
        }
        Ok(())
    }

    /// Checks `update` and applies it iff every constraint holds — the
    /// admission discipline of the bench twins. Returns the report; the
    /// caller inspects [`ShardReport::all_hold`] for the decision.
    pub fn admit(&mut self, update: &Update) -> Result<ShardReport, ShardError> {
        let report = self.check_update(update)?;
        if report.all_hold() {
            self.apply(update)?;
        }
        Ok(report)
    }

    /// Batch admission: updates are judged sequentially against the evolving
    /// state (an admitted update is visible to the next), matching the
    /// single-site admission service.
    pub fn admit_batch(&mut self, updates: &[Update]) -> Result<Vec<ShardReport>, ShardError> {
        updates.iter().map(|u| self.admit(u)).collect()
    }

    /// The merged global database (fragments unioned back).
    pub fn merged(&self) -> Result<Database, ShardError> {
        let frags: Vec<Database> = self
            .nodes
            .iter()
            .map(|n| n.frag.database().clone())
            .collect();
        Ok(self.parts.merged(&frags)?)
    }

    /// Fleet-wide wire totals, freshly folded from every peer client's
    /// cumulative counters ([`WireStats::merged`] — stateless, so repeated
    /// calls never double-count a client's history).
    pub fn wire_totals(&self) -> WireStats {
        let snaps: Vec<WireStats> = self
            .nodes
            .iter()
            .flat_map(|n| n.peers.iter().flatten())
            .map(|c| c.metrics().snapshot())
            .collect();
        WireStats::merged(&snaps)
    }

    /// Number of updates that needed the cross-shard protocol.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Severs the link from shard `of` to shard `peer` (fault injection:
    /// the peer looks dead to `of`'s escalations, which then degrade to
    /// `Unknown(RemoteUnavailable)` rather than guessing).
    pub fn sever(&mut self, of: usize, peer: usize) {
        if of == peer {
            return;
        }
        // A channel transport whose server end is dropped fails every
        // exchange with a disconnect — the "peer machine is gone" shape.
        let (transport, _dead_end) = ChannelTransport::pair();
        self.nodes[of].peers[peer] =
            Some(SiteClient::new(transport).with_retry(crate::client::RetryPolicy::none()));
    }
}

impl Drop for ShardedManager {
    fn drop(&mut self) {
        for handle in &self.tcp_handles {
            handle.stop();
        }
    }
}

/// Verdict combination for replicated-predicate updates checked on every
/// shard: any violation wins, then any unknown, then the first holds.
fn worst(a: Outcome, b: Outcome) -> Outcome {
    match (&a, &b) {
        (Outcome::Violated, _) | (_, Outcome::Violated) => Outcome::Violated,
        (Outcome::Unknown(_), _) => a,
        (_, Outcome::Unknown(_)) => b,
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_storage::tuple;
    use ccpi_storage::Locality;

    /// emp(name, dept, salary) hash-partitioned by dept, dept(name) by key,
    /// salRange replicated: the E6 constraint family is fragment-closed.
    fn demo() -> (Database, Partitioning) {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Local).unwrap();
        db.declare("salRange", 3, Locality::Local).unwrap();
        for d in 0..8i64 {
            db.insert("dept", tuple![d]).unwrap();
            db.insert("salRange", tuple![d, 10, 100]).unwrap();
        }
        for i in 0..64i64 {
            db.insert("emp", tuple![format!("e{i}").as_str(), i % 8, 50])
                .unwrap();
        }
        let parts = Partitioning::new(4)
            .hash("emp", 1)
            .hash("dept", 0)
            .replicate("salRange");
        (db, parts)
    }

    fn referential(mgr: &mut ShardedManager) -> ShardScope {
        mgr.add_constraint("ref", "panic :- emp(E,D,S) & not dept(D).")
            .unwrap()
    }

    #[test]
    fn fragment_local_updates_cost_zero_wire() {
        let (db, parts) = demo();
        let mut mgr = ShardedManager::colocated(&db, parts).unwrap();
        assert_eq!(referential(&mut mgr), ShardScope::FragmentLocal);

        // Insert with existing dept: admitted on the owner fragment alone.
        let ok = mgr
            .admit(&Update::insert("emp", tuple!["new", 3, 50]))
            .unwrap();
        assert!(ok.all_hold());
        assert!(ok.escalated.is_empty());

        // Dangling dept: *violated* on the owner fragment alone — the
        // co-partitioning closure makes fragment absence global absence.
        let bad = mgr
            .admit(&Update::insert("emp", tuple!["ghost", 999, 50]))
            .unwrap();
        assert_eq!(bad.outcome("ref"), Some(&Outcome::Violated));
        assert!(bad.escalated.is_empty());

        assert!(mgr.wire_totals().is_zero(), "no cross-shard traffic");
        assert_eq!(mgr.escalations(), 0);

        // The admitted insert landed, the rejected one did not.
        let merged = mgr.merged().unwrap();
        assert!(merged
            .relation("emp")
            .unwrap()
            .contains(&tuple!["new", 3, 50]));
        assert!(!merged
            .relation("emp")
            .unwrap()
            .contains(&tuple!["ghost", 999, 50]));
    }

    #[test]
    fn cross_shard_constraint_escalates_and_is_exact() {
        let (db, parts) = demo();
        let mut mgr = ShardedManager::colocated(&db, parts).unwrap();
        // Unique-name audit: emp self-join keyed by E while emp routes by
        // dept — not closed, so violations can span fragments.
        let scope = mgr
            .add_constraint("uniq", "panic :- emp(E,D,S) & emp(E,D2,S2) & D < D2.")
            .unwrap();
        assert_eq!(scope, ShardScope::CrossShard);

        // "e1" works in dept 1; inserting "e1" into another dept is a
        // violation whose two witness rows live on different shards.
        let dup = mgr
            .admit(&Update::insert("emp", tuple!["e1", 5, 60]))
            .unwrap();
        assert_eq!(dup.outcome("uniq"), Some(&Outcome::Violated));
        assert!(dup.escalated.contains(&"uniq".to_string()));
        assert!(mgr.escalations() > 0);
        assert!(
            mgr.wire_totals().round_trips > 0,
            "escalation used the wire"
        );

        // A genuinely fresh name is admitted (after escalation confirms it).
        let fresh = mgr
            .admit(&Update::insert("emp", tuple!["fresh", 5, 60]))
            .unwrap();
        assert!(fresh.all_hold());
    }

    #[test]
    fn dead_peer_degrades_to_unknown_not_wrong() {
        let (db, parts) = demo();
        let mut mgr = ShardedManager::colocated(&db, parts).unwrap();
        mgr.add_constraint("uniq", "panic :- emp(E,D,S) & emp(E,D2,S2) & D < D2.")
            .unwrap();

        let probe = Update::insert("emp", tuple!["probe", 2, 60]);
        let owner = mgr.partitioning().owner("emp", probe.tuple()).unwrap();
        let peer = (owner + 1) % mgr.shards();
        mgr.sever(owner, peer);

        let report = mgr.check_update(&probe).unwrap();
        assert!(
            matches!(report.outcome("uniq"), Some(Outcome::Unknown(_))),
            "unreachable fragment must cost certainty, not correctness: {:?}",
            report.outcome("uniq")
        );
    }

    #[test]
    fn replicated_updates_check_every_fragment() {
        let (db, parts) = demo();
        let mut mgr = ShardedManager::colocated(&db, parts).unwrap();
        referential(&mut mgr);
        mgr.add_constraint(
            "floor",
            "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
        )
        .unwrap();

        // Raising dept 3's floor above current salaries violates via emp
        // rows that live only on dept 3's owner shard — but the update
        // itself is replicated, so every shard checks.
        let bad = mgr
            .admit(&Update::insert("salRange", tuple![3, 60, 100]))
            .unwrap();
        assert_eq!(bad.shards.len(), mgr.shards());
        assert_eq!(bad.outcome("floor"), Some(&Outcome::Violated));
        assert!(bad.escalated.is_empty(), "replicated check stays local");

        // A compatible range is admitted and lands on every fragment.
        let ok = mgr
            .admit(&Update::insert("salRange", tuple![3, 10, 90]))
            .unwrap();
        assert!(ok.all_hold());
        let merged = mgr.merged().unwrap();
        assert!(merged
            .relation("salRange")
            .unwrap()
            .contains(&tuple![3, 10, 90]));
    }

    #[test]
    fn sharded_verdicts_match_single_site_twin() {
        let (db, parts) = demo();
        let mut sharded = ShardedManager::colocated(&db, parts).unwrap();
        let mut twin = ConstraintManager::new(db);
        for (name, src) in [
            ("ref", "panic :- emp(E,D,S) & not dept(D)."),
            (
                "floor",
                "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
            ),
            ("uniq", "panic :- emp(E,D,S) & emp(E,D2,S2) & D < D2."),
        ] {
            sharded.add_constraint(name, src).unwrap();
            twin.add_constraint(name, src).unwrap();
        }
        let stream = [
            Update::insert("emp", tuple!["a", 0, 50]),
            Update::insert("emp", tuple!["a", 1, 50]), // dup name, cross-shard
            Update::insert("emp", tuple!["b", 999, 50]), // dangling dept
            Update::insert("emp", tuple!["c", 2, 5]),  // below floor
            Update::delete("emp", tuple!["e1", 1, 50]),
            Update::insert("dept", tuple![100]),
            Update::insert("emp", tuple!["d", 100, 50]),
            Update::delete("dept", tuple![7]), // still referenced
        ];
        for u in &stream {
            let s = sharded.admit(u).unwrap();
            let t = twin.check_update(u).unwrap();
            if t.all_hold() {
                twin.database_mut().apply(u).unwrap();
            }
            for (name, got) in &s.outcomes {
                let want = t.outcome(name).unwrap();
                assert_eq!(
                    got.holds(),
                    want.holds(),
                    "verdict divergence on {name} for {u}"
                );
            }
        }
    }

    #[test]
    fn tcp_topology_round_trips() {
        let (db, parts) = demo();
        let mut mgr = ShardedManager::colocated_tcp(&db, parts).unwrap();
        mgr.add_constraint("uniq", "panic :- emp(E,D,S) & emp(E,D2,S2) & D < D2.")
            .unwrap();
        let dup = mgr
            .admit(&Update::insert("emp", tuple!["e1", 5, 60]))
            .unwrap();
        assert_eq!(dup.outcome("uniq"), Some(&Outcome::Violated));
        assert!(mgr.wire_totals().bytes_sent > 0);
    }
}
