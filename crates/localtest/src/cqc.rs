//! The §5 constraint form and reductions.
//!
//! > We focus on conjunctive query constraints (CQC's) of the following
//! > form: `panic :- l & r₁ & … & rₙ & c₁ & … & cₖ`. Here, `l` is the one
//! > subgoal with a local predicate … Each of the `rᵢ`'s is a subgoal with
//! > a remote predicate, and each of the `cᵢ`'s is an arithmetic
//! > comparison.
//!
//! [`Cqc::red`] computes `RED(t, l, C)`, "obtained by substituting the
//! components of `t` for the corresponding variables in the arguments of
//! `l`, and then eliminating `l`" (Example 5.3). When `l` has repeated
//! variables or constants that `t` does not match, the reduction does not
//! exist (Example 5.4's `RED((a,b,c))`) and the insertion can never
//! violate the constraint.

use ccpi_ir::subst::match_atom;
use ccpi_ir::{Atom, Cq, Subst, Sym, Term, PANIC};
use ccpi_storage::{Locality, Tuple};
use std::fmt;

/// A validated conjunctive-query constraint with one local subgoal.
#[derive(Clone, Debug)]
pub struct Cqc {
    /// The whole constraint as a CQ (head `panic`).
    cq: Cq,
    /// Index of the local subgoal within `cq.positives`.
    local_idx: usize,
}

/// Why a CQ is not a usable CQC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CqcError {
    /// The head is not the 0-ary `panic`.
    NotAConstraint,
    /// Negated subgoals are outside the §5 form.
    HasNegation,
    /// No subgoal uses a local predicate.
    NoLocalSubgoal,
    /// More than one subgoal uses a local predicate (the paper folds a
    /// local conjunction into one subgoal; we require that normalization
    /// up front).
    MultipleLocalSubgoals,
    /// A comparison variable appears in no ordinary subgoal (safety).
    Unsafe(Sym),
}

impl fmt::Display for CqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqcError::NotAConstraint => write!(f, "head must be the 0-ary `panic`"),
            CqcError::HasNegation => write!(f, "CQCs may not contain negated subgoals"),
            CqcError::NoLocalSubgoal => write!(f, "no subgoal uses a local predicate"),
            CqcError::MultipleLocalSubgoals => {
                write!(f, "more than one subgoal uses a local predicate")
            }
            CqcError::Unsafe(v) => write!(
                f,
                "comparison variable `{v}` appears in no ordinary subgoal"
            ),
        }
    }
}

impl std::error::Error for CqcError {}

impl Cqc {
    /// Validates `cq` as a CQC, locating the local subgoal via `locality`.
    pub fn new(cq: Cq, locality: impl Fn(&str) -> Option<Locality>) -> Result<Self, CqcError> {
        if cq.head.pred != PANIC || cq.head.arity() != 0 {
            return Err(CqcError::NotAConstraint);
        }
        if !cq.is_negation_free() {
            return Err(CqcError::HasNegation);
        }
        let local_positions: Vec<usize> = cq
            .positives
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(locality(a.pred.as_str()), Some(Locality::Local)))
            .map(|(i, _)| i)
            .collect();
        let local_idx = match local_positions.as_slice() {
            [] => return Err(CqcError::NoLocalSubgoal),
            [i] => *i,
            _ => return Err(CqcError::MultipleLocalSubgoals),
        };
        // Safety: every comparison variable must occur in some subgoal
        // ("Variables in the c's must also appear in l or one of the r's").
        for c in &cq.comparisons {
            for v in c.vars() {
                if !cq.positives.iter().any(|a| a.vars().any(|w| w == v)) {
                    return Err(CqcError::Unsafe(v.0.clone()));
                }
            }
        }
        Ok(Cqc { cq, local_idx })
    }

    /// Validates with an explicitly named local predicate.
    pub fn with_local(cq: Cq, local_pred: &str) -> Result<Self, CqcError> {
        Cqc::new(cq, |p| {
            Some(if p == local_pred {
                Locality::Local
            } else {
                Locality::Remote
            })
        })
    }

    /// The underlying CQ.
    pub fn cq(&self) -> &Cq {
        &self.cq
    }

    /// The local subgoal `l`.
    pub fn local_atom(&self) -> &Atom {
        &self.cq.positives[self.local_idx]
    }

    /// The local predicate's name.
    pub fn local_pred(&self) -> &Sym {
        &self.local_atom().pred
    }

    /// The remote subgoals `r₁ … rₙ`.
    pub fn remotes(&self) -> impl Iterator<Item = &Atom> {
        self.cq
            .positives
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != self.local_idx)
            .map(|(_, a)| a)
    }

    /// Variables of the constraint that do **not** occur in the local
    /// subgoal — the paper's *remote variables* (§6).
    pub fn remote_vars(&self) -> Vec<ccpi_ir::Var> {
        let local: Vec<&ccpi_ir::Var> = self.local_atom().vars().collect();
        self.cq
            .vars()
            .into_iter()
            .filter(|v| !local.contains(&v))
            .collect()
    }

    /// `RED(t, l, C)` — the reduction of the constraint by tuple `t` in
    /// the local subgoal. `None` when `t` does not unify with `l`
    /// (Example 5.4: "there is no condition under which the insertion of
    /// `t` could invalidate `C`").
    pub fn red(&self, t: &Tuple) -> Option<Cq> {
        let ground = Atom {
            pred: self.local_pred().clone(),
            args: t.iter().cloned().map(Term::Const).collect(),
        };
        let mut s = Subst::new();
        if !match_atom(&mut s, self.local_atom(), &ground) {
            return None;
        }
        Some(Cq {
            head: self.cq.head.clone(),
            positives: self.remotes().map(|a| s.apply_atom(a)).collect(),
            negatives: vec![],
            comparisons: self.cq.comparisons.iter().map(|c| s.apply_cmp(c)).collect(),
        })
    }
}

impl fmt::Display for Cqc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_cq;
    use ccpi_storage::tuple;

    /// Example 5.3's forbidden-intervals constraint with `l` local.
    fn forbidden() -> Cqc {
        let cq = parse_cq("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").unwrap();
        Cqc::with_local(cq, "l").unwrap()
    }

    #[test]
    fn validates_and_splits() {
        let c = forbidden();
        assert_eq!(c.local_pred().as_str(), "l");
        assert_eq!(c.remotes().count(), 1);
        let rv = c.remote_vars();
        assert_eq!(rv.len(), 1);
        assert_eq!(rv[0].name(), "Z");
    }

    /// Example 5.3: RED((3,6)) = r(Z) & 3<=Z & Z<=6, etc.
    #[test]
    fn example_5_3_reductions() {
        let c = forbidden();
        let red = c.red(&tuple![3, 6]).unwrap();
        assert_eq!(red.to_string(), "panic :- r(Z) & 3 <= Z & Z <= 6.");
        let red = c.red(&tuple![5, 10]).unwrap();
        assert_eq!(red.to_string(), "panic :- r(Z) & 5 <= Z & Z <= 10.");
        let red = c.red(&tuple![4, 8]).unwrap();
        assert_eq!(red.to_string(), "panic :- r(Z) & 4 <= Z & Z <= 8.");
    }

    /// Example 5.4: l(X,Y,Y) — the reduction by (a,b,c) does not exist,
    /// the reduction by (a,b,b) does.
    #[test]
    fn example_5_4_reduction_existence() {
        let cq = parse_cq("panic :- l(X,Y,Y) & r(Y,Z,X).").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        assert!(c.red(&tuple!["a", "b", "c"]).is_none());
        let red = c.red(&tuple!["a", "b", "b"]).unwrap();
        assert_eq!(red.to_string(), "panic :- r(b,Z,a).");
    }

    #[test]
    fn constants_in_local_subgoal_constrain_reductions() {
        let cq = parse_cq("panic :- l(X,toy) & r(X).").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        assert!(c.red(&tuple![1, "shoe"]).is_none());
        assert_eq!(
            c.red(&tuple![1, "toy"]).unwrap().to_string(),
            "panic :- r(1)."
        );
    }

    #[test]
    fn rejects_malformed_cqcs() {
        let not_panic = parse_cq("q(X) :- l(X) & r(X).").unwrap();
        assert_eq!(
            Cqc::with_local(not_panic, "l").unwrap_err(),
            CqcError::NotAConstraint
        );

        let negated = parse_cq("panic :- l(X) & not r(X).").unwrap();
        assert_eq!(
            Cqc::with_local(negated, "l").unwrap_err(),
            CqcError::HasNegation
        );

        let no_local = parse_cq("panic :- r(X) & s(X).").unwrap();
        assert_eq!(
            Cqc::with_local(no_local, "l").unwrap_err(),
            CqcError::NoLocalSubgoal
        );

        let two_local = parse_cq("panic :- l(X) & l(Y) & r(X,Y).").unwrap();
        assert_eq!(
            Cqc::with_local(two_local, "l").unwrap_err(),
            CqcError::MultipleLocalSubgoals
        );

        let unsafe_cmp = parse_cq("panic :- l(X) & X < W.").unwrap();
        assert!(matches!(
            Cqc::with_local(unsafe_cmp, "l").unwrap_err(),
            CqcError::Unsafe(_)
        ));
    }

    #[test]
    fn locality_function_drives_selection() {
        use ccpi_storage::{Database, Locality};
        let mut db = Database::new();
        db.declare("inv", 2, Locality::Local).unwrap();
        db.declare("cat", 1, Locality::Remote).unwrap();
        let cq = parse_cq("panic :- inv(I,Q) & cat(I) & Q < 0.").unwrap();
        let c = Cqc::new(cq, |p| db.locality(p)).unwrap();
        assert_eq!(c.local_pred().as_str(), "inv");
    }

    #[test]
    fn remote_vars_exclude_local_ones() {
        let cq = parse_cq("panic :- l(X,Y) & r(X,Z) & r(W,W2) & Z < Y.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let names: Vec<String> = c
            .remote_vars()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(names, vec!["Z", "W", "W2"]);
    }
}
