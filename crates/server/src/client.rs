//! The admission client: one connection, sealed exchanges, no silent
//! retries.
//!
//! [`AdmissionClient`] reuses the `ccpi-site` transport layer (the same
//! length-prefixed TCP framing and deadline plumbing the distributed
//! checker uses) but deliberately **does not retry**: a `Submit` is not
//! idempotent. If an exchange dies after the frame left, the server may
//! have admitted the batch without us seeing the ack — resending would
//! risk applying it twice. The client therefore surfaces every failure
//! and leaves reconciliation to the caller, who can `query` the
//! authoritative snapshot to learn what actually landed. Read-only
//! requests (`ping`, `query`, `version`) are safe to re-issue by simply
//! calling again.
//!
//! The one exception is backpressure: a
//! [`Busy`](crate::proto::ServerResponse::Busy) reply guarantees the
//! batch was never enqueued, so
//! [`AdmissionClient::submit_with_backoff`] retries on Busy — and on
//! nothing else.
//!
//! Integrity failures keep the site-client taxonomy: an undecodable
//! reply, a stale nonce, a response-count mismatch, or a peer
//! [`BadFrame`](crate::proto::ServerResponse::BadFrame) all poison the
//! connection ([`Transport::reset`]) so the next call starts on a fresh
//! stream, and map to [`ClientError::Protocol`]. An intact
//! application-level refusal maps to [`ClientError::Server`].

use crate::proto::{decode_responses, encode_requests, AdmitResult, ServerRequest, ServerResponse};
use ccpi_site::transport::{TcpTransport, Transport, TransportError};
use ccpi_storage::{Tuple, Update};
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

/// Why an exchange failed, in decreasing order of "the wire itself is
/// fine".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The transport failed (timeout, disconnect, framing violation).
    /// For a `submit`, the batch may or may not have been admitted —
    /// query the server to reconcile.
    Transport(TransportError),
    /// The bytes arrived but violated the protocol: corrupt frame, stale
    /// nonce, wrong response shape or count. The connection is poisoned
    /// and will re-dial on the next call.
    Protocol(String),
    /// The server answered with an application-level error; the exchange
    /// itself was sound.
    Server(String),
    /// The server's admission queue was full and the batch was **not**
    /// enqueued (the payload is the server's configured queue depth).
    /// This is the one failure where resending the identical batch is
    /// safe — see [`AdmissionClient::submit_with_backoff`].
    Busy(u32),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Busy(depth) => {
                write!(f, "server busy: admission queue full (depth {depth})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A client for one admission server.
pub struct AdmissionClient {
    transport: Box<dyn Transport>,
    /// Per-exchange deadline. `Submit` exchanges wait for the group
    /// commit (a real fsync), so this is more generous than the site
    /// client's read-only default would need to be.
    deadline: Duration,
    /// Monotonic exchange nonce; the server echoes it, so a stale or
    /// duplicated reply is detectable.
    nonce: u64,
}

impl AdmissionClient {
    /// A client that will connect to `addr` (lazily, on first use) over
    /// TCP.
    pub fn connect(addr: SocketAddr) -> AdmissionClient {
        AdmissionClient::new(TcpTransport::new(addr))
    }

    /// A client over any transport with the default 5 s deadline.
    pub fn new(transport: impl Transport + 'static) -> AdmissionClient {
        AdmissionClient {
            transport: Box::new(transport),
            deadline: Duration::from_secs(5),
            nonce: 0,
        }
    }

    /// Sets the per-exchange deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> AdmissionClient {
        self.deadline = deadline;
        self
    }

    /// One sealed request/response exchange. No retries — see the module
    /// docs for why.
    pub fn exchange(&mut self, reqs: &[ServerRequest]) -> Result<Vec<ServerResponse>, ClientError> {
        self.nonce = self.nonce.wrapping_add(1);
        let nonce = self.nonce;
        let payload = encode_requests(nonce, reqs);
        let reply = self
            .transport
            .round_trip(&payload, self.deadline)
            .map_err(ClientError::Transport)?;
        let (echo, resps) = match decode_responses(&reply) {
            Ok(decoded) => decoded,
            Err(e) => {
                self.transport.reset();
                return Err(ClientError::Protocol(format!("undecodable reply: {e}")));
            }
        };
        if let Some(ServerResponse::BadFrame { message }) = resps
            .iter()
            .find(|r| matches!(r, ServerResponse::BadFrame { .. }))
        {
            // Our frame arrived mangled; the stream can no longer be
            // trusted to pair requests with replies.
            let message = message.clone();
            self.transport.reset();
            return Err(ClientError::Protocol(format!(
                "peer rejected our frame: {message}"
            )));
        }
        if echo != nonce {
            self.transport.reset();
            return Err(ClientError::Protocol(format!(
                "stale or duplicated reply (nonce {echo}, expected {nonce})"
            )));
        }
        if resps.len() != reqs.len() {
            self.transport.reset();
            return Err(ClientError::Protocol(format!(
                "{} responses to {} requests",
                resps.len(),
                reqs.len()
            )));
        }
        Ok(resps)
    }

    /// Round-trip probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.exchange(&[ServerRequest::Ping])?.pop() {
            Some(ServerResponse::Pong) => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Submits a batch of updates for admission; returns one verdict per
    /// update, in order. When this returns `Ok`, every `admitted` verdict
    /// is **durable**: the server acked only after the group fsync.
    pub fn submit(&mut self, updates: &[Update]) -> Result<Vec<AdmitResult>, ClientError> {
        let req = ServerRequest::Submit {
            updates: updates.to_vec(),
        };
        match self.exchange(std::slice::from_ref(&req))?.pop() {
            Some(ServerResponse::Admitted { results }) if results.len() == updates.len() => {
                Ok(results)
            }
            Some(ServerResponse::Admitted { results }) => Err(ClientError::Protocol(format!(
                "{} verdicts for {} updates",
                results.len(),
                updates.len()
            ))),
            Some(ServerResponse::Error { message }) => Err(ClientError::Server(message)),
            Some(ServerResponse::Busy { depth }) => Err(ClientError::Busy(depth)),
            other => Err(ClientError::Protocol(format!(
                "expected Admitted, got {other:?}"
            ))),
        }
    }

    /// Like [`submit`](AdmissionClient::submit), but retries — with an
    /// exponential backoff starting at `base_delay` — when the server
    /// answers [`ClientError::Busy`]. Busy is the **only** retried
    /// failure: a `Busy` reply guarantees the batch never entered the
    /// admission queue, so resending cannot double-apply. Every other
    /// error (transport, protocol, server) is surfaced immediately, for
    /// the same non-idempotency reasons `submit` itself never retries.
    ///
    /// After `max_retries` sleeps the final attempt's error (normally
    /// `Busy`) is returned.
    pub fn submit_with_backoff(
        &mut self,
        updates: &[Update],
        max_retries: usize,
        base_delay: Duration,
    ) -> Result<Vec<AdmitResult>, ClientError> {
        let mut delay = base_delay;
        for _ in 0..max_retries {
            match self.submit(updates) {
                Err(ClientError::Busy(_)) => {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                other => return other,
            }
        }
        self.submit(updates)
    }

    /// Reads a whole relation from the server's latest published MVCC
    /// snapshot; returns `(snapshot_version, rows)`. Never waits behind
    /// the admission writer.
    pub fn query(&mut self, pred: &str) -> Result<(u64, Vec<Tuple>), ClientError> {
        let req = ServerRequest::Query {
            pred: pred.to_string(),
        };
        match self.exchange(std::slice::from_ref(&req))?.pop() {
            Some(ServerResponse::Rows { version, rows, .. }) => Ok((version, rows)),
            Some(ServerResponse::Error { message }) => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Rows, got {other:?}"
            ))),
        }
    }

    /// Reads the latest published snapshot's version counter.
    pub fn version(&mut self) -> Result<u64, ClientError> {
        match self.exchange(&[ServerRequest::Version])?.pop() {
            Some(ServerResponse::Version { version }) => Ok(version),
            Some(ServerResponse::Error { message }) => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Version, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_requests, encode_responses};
    use ccpi_site::transport::ChannelTransport;

    /// Spawns an in-process responder that answers every request batch
    /// with `f(nonce, reqs)`.
    fn responder(
        f: impl Fn(u64, Vec<ServerRequest>) -> Vec<u8> + Send + 'static,
    ) -> AdmissionClient {
        let (transport, end) = ChannelTransport::pair();
        std::thread::spawn(move || {
            while let Ok(frame) = end.requests.recv() {
                let reply = match decode_requests(&frame) {
                    Ok((nonce, reqs)) => f(nonce, reqs),
                    Err(e) => encode_responses(
                        0,
                        &[ServerResponse::BadFrame {
                            message: format!("bad request frame: {e}"),
                        }],
                    ),
                };
                if end.replies.send(reply).is_err() {
                    break;
                }
            }
        });
        AdmissionClient::new(transport).with_deadline(Duration::from_millis(500))
    }

    #[test]
    fn ping_round_trips() {
        let mut client = responder(|nonce, reqs| {
            assert_eq!(reqs, vec![ServerRequest::Ping]);
            encode_responses(nonce, &[ServerResponse::Pong])
        });
        client.ping().unwrap();
        client.ping().unwrap();
    }

    #[test]
    fn stale_nonce_is_a_protocol_error() {
        let mut client =
            responder(|nonce, _| encode_responses(nonce.wrapping_add(7), &[ServerResponse::Pong]));
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn response_count_mismatch_is_a_protocol_error() {
        let mut client = responder(|nonce, _| {
            encode_responses(nonce, &[ServerResponse::Pong, ServerResponse::Pong])
        });
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn server_error_is_surfaced_as_server_not_protocol() {
        let mut client = responder(|nonce, _| {
            encode_responses(
                nonce,
                &[ServerResponse::Error {
                    message: "unknown relation `nope`".into(),
                }],
            )
        });
        let err = client.query("nope").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err:?}");
    }

    #[test]
    fn peer_bad_frame_is_a_protocol_error() {
        let mut client = responder(|_, _| {
            encode_responses(
                0,
                &[ServerResponse::BadFrame {
                    message: "checksum".into(),
                }],
            )
        });
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn corrupt_reply_is_a_protocol_error() {
        let mut client = responder(|nonce, _| {
            let mut frame = encode_responses(nonce, &[ServerResponse::Pong]);
            let mid = frame.len() / 2;
            frame[mid] ^= 0xff;
            frame
        });
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn busy_reply_surfaces_as_busy() {
        let mut client =
            responder(|nonce, _| encode_responses(nonce, &[ServerResponse::Busy { depth: 4 }]));
        let err = client
            .submit(&[Update::insert("acct", ccpi_storage::tuple![1, 2])])
            .unwrap_err();
        assert_eq!(err, ClientError::Busy(4));
    }

    #[test]
    fn backoff_retries_busy_until_admitted() {
        use crate::proto::AdmitResult;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&calls);
        let mut client = responder(move |nonce, _| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                encode_responses(nonce, &[ServerResponse::Busy { depth: 1 }])
            } else {
                encode_responses(
                    nonce,
                    &[ServerResponse::Admitted {
                        results: vec![AdmitResult {
                            admitted: true,
                            violations: vec![],
                            unknowns: vec![],
                        }],
                    }],
                )
            }
        });
        let results = client
            .submit_with_backoff(
                &[Update::insert("acct", ccpi_storage::tuple![1, 2])],
                5,
                Duration::from_millis(1),
            )
            .unwrap();
        assert!(results[0].admitted);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "two Busy, one Admitted");
    }

    #[test]
    fn backoff_gives_up_after_max_retries() {
        let mut client =
            responder(|nonce, _| encode_responses(nonce, &[ServerResponse::Busy { depth: 1 }]));
        let err = client
            .submit_with_backoff(
                &[Update::insert("acct", ccpi_storage::tuple![1, 2])],
                2,
                Duration::from_millis(1),
            )
            .unwrap_err();
        assert_eq!(err, ClientError::Busy(1));
    }

    #[test]
    fn backoff_never_retries_non_busy_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&calls);
        let mut client = responder(move |nonce, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            encode_responses(
                nonce,
                &[ServerResponse::Error {
                    message: "pipeline down".into(),
                }],
            )
        });
        let err = client
            .submit_with_backoff(
                &[Update::insert("acct", ccpi_storage::tuple![1, 2])],
                5,
                Duration::from_millis(1),
            )
            .unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err:?}");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "a non-Busy failure must not be resent"
        );
    }

    #[test]
    fn dead_server_is_a_transport_error() {
        let (transport, end) = ChannelTransport::pair();
        drop(end);
        let mut client = AdmissionClient::new(transport).with_deadline(Duration::from_millis(50));
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "{err:?}");
    }
}
