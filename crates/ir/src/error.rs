//! Error types for the IR layer.

use crate::sym::Sym;
use std::fmt;

/// Errors raised while building or validating IR objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The predicate name.
        pred: Sym,
        /// Arity seen first.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// A constraint program has no rule for the `panic` goal.
    MissingPanic,
    /// A rule violates range restriction (safety).
    Unsafe {
        /// The offending variable.
        var: Sym,
        /// Rendering of the offending rule.
        rule: String,
        /// Where the variable occurs unsafely.
        place: UnsafePlace,
    },
    /// A query was expected to be a single conjunctive-query rule.
    NotSingleRule,
    /// A conversion expected a CQ without negation.
    UnexpectedNegation,
    /// A conversion expected a CQ without arithmetic comparisons.
    UnexpectedArithmetic,
}

/// Where an unsafe variable occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafePlace {
    /// In the rule head.
    Head,
    /// In a negated subgoal.
    NegatedSubgoal,
    /// In a comparison subgoal.
    Comparison,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ArityMismatch {
                pred,
                first,
                second,
            } => write!(
                f,
                "predicate `{pred}` used with conflicting arities {first} and {second}"
            ),
            IrError::MissingPanic => {
                write!(f, "constraint program defines no 0-ary `panic` goal")
            }
            IrError::Unsafe { var, rule, place } => {
                let where_ = match place {
                    UnsafePlace::Head => "the head",
                    UnsafePlace::NegatedSubgoal => "a negated subgoal",
                    UnsafePlace::Comparison => "a comparison",
                };
                write!(
                    f,
                    "variable `{var}` occurs in {where_} of `{rule}` but in no positive ordinary subgoal"
                )
            }
            IrError::NotSingleRule => write!(f, "expected a single-rule conjunctive query"),
            IrError::UnexpectedNegation => write!(f, "conjunctive query has negated subgoals"),
            IrError::UnexpectedArithmetic => {
                write!(f, "conjunctive query has arithmetic comparisons")
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = IrError::ArityMismatch {
            pred: Sym::new("emp"),
            first: 2,
            second: 3,
        };
        assert!(e.to_string().contains("emp"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));

        let e = IrError::Unsafe {
            var: Sym::new("Z"),
            rule: "panic :- l(X) & Z < X.".into(),
            place: UnsafePlace::Comparison,
        };
        assert!(e.to_string().contains('Z'));
        assert!(e.to_string().contains("comparison"));
    }
}
