//! Random query generators for the containment experiments.
//!
//! §5's complexity discussion turns on one quantity: how many containment
//! mappings `|H|` there are, which is governed by how often the same
//! predicate repeats ("for constraint checking, it is likely that the
//! conjunctive queries involved will have few duplicate predicates …
//! Thus, there will tend to be few containment mappings in practice").
//! [`CqcConfig::duplication`] is that knob; the `thm51_vs_klug` bench
//! sweeps it, together with the variable count that drives Klug's
//! weak-order enumeration.

use ccpi_ir::{Atom, CompOp, Comparison, Cq, Term, PANIC};
use rand::rngs::StdRng;
use rand::RngExt;

/// Random-CQC parameters.
#[derive(Clone, Debug)]
pub struct CqcConfig {
    /// Number of ordinary subgoals.
    pub subgoals: usize,
    /// Number of distinct predicate names to draw from; lower = more
    /// duplication = more containment mappings.
    pub duplication: usize,
    /// Arity of every predicate.
    pub arity: usize,
    /// Number of distinct variables.
    pub variables: usize,
    /// Number of comparison subgoals.
    pub comparisons: usize,
    /// Number of distinct integer constants available to comparisons.
    pub constants: i64,
}

impl Default for CqcConfig {
    fn default() -> Self {
        CqcConfig {
            subgoals: 3,
            duplication: 2,
            arity: 2,
            variables: 4,
            comparisons: 2,
            constants: 3,
        }
    }
}

fn var(i: usize) -> Term {
    Term::var(format!("V{i}"))
}

/// Generates a random CQC with a 0-ary `panic` head. Every comparison only
/// uses variables that occur in some subgoal, so the result is safe.
pub fn random_cqc(cfg: &CqcConfig, rng: &mut StdRng) -> Cq {
    let mut positives = Vec::with_capacity(cfg.subgoals);
    let mut used_vars: Vec<usize> = Vec::new();
    for _ in 0..cfg.subgoals {
        let pred = format!("p{}", rng.random_range(0..cfg.duplication.max(1)));
        let args: Vec<Term> = (0..cfg.arity)
            .map(|_| {
                let v = rng.random_range(0..cfg.variables.max(1));
                if !used_vars.contains(&v) {
                    used_vars.push(v);
                }
                var(v)
            })
            .collect();
        positives.push(Atom::new(pred, args));
    }
    let ops = [CompOp::Lt, CompOp::Le, CompOp::Eq, CompOp::Ne];
    let comparisons = (0..cfg.comparisons)
        .map(|_| {
            let lhs = var(used_vars[rng.random_range(0..used_vars.len())]);
            let rhs = if rng.random_bool(0.4) {
                Term::int(rng.random_range(0..cfg.constants.max(1)))
            } else {
                var(used_vars[rng.random_range(0..used_vars.len())])
            };
            Comparison::new(lhs, ops[rng.random_range(0..ops.len())], rhs)
        })
        .collect();
    Cq {
        head: Atom::new(PANIC, vec![]),
        positives,
        negatives: vec![],
        comparisons,
    }
}

/// A matched containment pair: a query and a relaxed variant likely (but
/// not certain) to contain it — gives the benchmark a mix of positive and
/// negative containment instances.
pub fn containment_pair(cfg: &CqcConfig, rng: &mut StdRng) -> (Cq, Cq) {
    let c1 = random_cqc(cfg, rng);
    let mut c2 = c1.clone();
    // Relax: drop a random subgoal (if >1) and a random comparison.
    if c2.positives.len() > 1 {
        let k = rng.random_range(0..c2.positives.len());
        c2.positives.remove(k);
    }
    if !c2.comparisons.is_empty() && rng.random_bool(0.7) {
        let k = rng.random_range(0..c2.comparisons.len());
        c2.comparisons.remove(k);
    }
    // Occasionally perturb instead, producing likely-negative instances.
    if rng.random_bool(0.3) && !c2.comparisons.is_empty() {
        let k = rng.random_range(0..c2.comparisons.len());
        c2.comparisons[k] = c2.comparisons[k].negated();
    }
    // Dropping a subgoal may have stranded comparison variables; remove
    // comparisons that would make the query unsafe.
    let bound: Vec<ccpi_ir::Var> = c2
        .positives
        .iter()
        .flat_map(|a| a.vars().cloned().collect::<Vec<_>>())
        .collect();
    c2.comparisons
        .retain(|c| c.vars().all(|v| bound.contains(v)));
    (c1, c2)
}

/// The Example 5.1 family scaled up: `C1(k): panic :- r(U1,V1) & … &
/// r(Uk,Vk) & U1=V2 & U2=V3 & … (a cycle)`, contained in
/// `C2: panic :- r(A,B) & A <= B` in a way that needs many mappings.
pub fn cycle_family(k: usize) -> (Cq, Cq) {
    let mut positives = Vec::with_capacity(k);
    let mut comparisons = Vec::with_capacity(k);
    for i in 0..k {
        positives.push(Atom::new(
            "r",
            vec![Term::var(format!("U{i}")), Term::var(format!("V{i}"))],
        ));
        // V_i = U_{(i+1) mod k}: an r-cycle.
        comparisons.push(Comparison::new(
            Term::var(format!("V{i}")),
            CompOp::Eq,
            Term::var(format!("U{}", (i + 1) % k)),
        ));
    }
    let c1 = Cq {
        head: Atom::new(PANIC, vec![]),
        positives,
        negatives: vec![],
        comparisons,
    };
    let c2 = Cq {
        head: Atom::new(PANIC, vec![]),
        positives: vec![Atom::new("r", vec![Term::var("A"), Term::var("B")])],
        negatives: vec![],
        comparisons: vec![Comparison::new(Term::var("A"), CompOp::Le, Term::var("B"))],
    };
    (c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_ir::safety::check_rule;

    #[test]
    fn random_cqcs_are_safe() {
        let cfg = CqcConfig::default();
        let mut rng = crate::rng(21);
        for _ in 0..100 {
            let cq = random_cqc(&cfg, &mut rng);
            assert!(check_rule(&cq.to_rule()).is_ok(), "{cq}");
            assert_eq!(cq.positives.len(), cfg.subgoals);
        }
    }

    #[test]
    fn duplication_knob_controls_predicates() {
        let cfg = CqcConfig {
            duplication: 1,
            subgoals: 4,
            ..CqcConfig::default()
        };
        let cq = random_cqc(&cfg, &mut crate::rng(2));
        assert!(cq.positives.iter().all(|a| a.pred == "p0"));
    }

    #[test]
    fn cycle_family_containment_holds_for_even_k() {
        // The 2-cycle is Example 5.1 itself; verify with both methods.
        let (c1, c2) = cycle_family(2);
        let yes = ccpi_containment::klug::both_methods(&c1, std::slice::from_ref(&c2)).unwrap();
        assert!(yes);
    }

    #[test]
    fn containment_pairs_are_valid_queries() {
        let cfg = CqcConfig::default();
        let mut rng = crate::rng(33);
        for _ in 0..50 {
            let (a, b) = containment_pair(&cfg, &mut rng);
            assert!(check_rule(&a.to_rule()).is_ok());
            assert!(check_rule(&b.to_rule()).is_ok());
        }
    }
}
