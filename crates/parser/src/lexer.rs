//! Tokenizer for the paper's rule syntax.

use std::fmt;

/// Kinds of tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Lower-case identifier: predicate name or symbolic constant.
    LowerIdent(String),
    /// Capitalized identifier: a variable.
    UpperIdent(String),
    /// An integer literal (possibly negative).
    Int(i64),
    /// `:-`
    Implies,
    /// `&`
    Amp,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `not`
    Not,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::LowerIdent(s) => format!("identifier `{s}`"),
            TokenKind::UpperIdent(s) => format!("variable `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Implies => "`:-`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Not => "`not`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Gt => "`>`".into(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// A lexing error with position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src` fully.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            let (_, c) = chars.next().unwrap();
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }

    while let Some(&(_, c)) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '%' => {
                // Line comment.
                while let Some(&(_, c)) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line: tl,
                    col: tc,
                });
            }
            ',' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line: tl,
                    col: tc,
                });
            }
            '&' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Amp,
                    line: tl,
                    col: tc,
                });
            }
            '.' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    line: tl,
                    col: tc,
                });
            }
            '<' => {
                bump!();
                let kind = match chars.peek() {
                    Some(&(_, '=')) => {
                        bump!();
                        TokenKind::Le
                    }
                    Some(&(_, '>')) => {
                        bump!();
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
            }
            '>' => {
                bump!();
                let kind = match chars.peek() {
                    Some(&(_, '=')) => {
                        bump!();
                        TokenKind::Ge
                    }
                    _ => TokenKind::Gt,
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
            }
            ':' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '-')) => {
                        bump!();
                        tokens.push(Token {
                            kind: TokenKind::Implies,
                            line: tl,
                            col: tc,
                        });
                    }
                    _ => {
                        return Err(LexError {
                            message: "expected `-` after `:`".into(),
                            line: tl,
                            col: tc,
                        })
                    }
                }
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                if neg {
                    bump!();
                    match chars.peek() {
                        Some(&(_, d)) if d.is_ascii_digit() => {}
                        _ => {
                            return Err(LexError {
                                message: "expected digit after `-`".into(),
                                line: tl,
                                col: tc,
                            })
                        }
                    }
                }
                let mut n: i64 = 0;
                while let Some(&(_, d)) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        bump!();
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(i64::from(digit)))
                            .ok_or_else(|| LexError {
                                message: "integer literal overflows i64".into(),
                                line: tl,
                                col: tc,
                            })?;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Int(if neg { -n } else { n }),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(bump!());
                    } else {
                        break;
                    }
                }
                let kind = if ident == "not" {
                    TokenKind::Not
                } else if ident
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_uppercase() || c == '_')
                {
                    TokenKind::UpperIdent(ident)
                } else {
                    TokenKind::LowerIdent(ident)
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tl,
                    col: tc,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_rule() {
        let ks = kinds("panic :- emp(E,D,S) & S < 100.");
        assert_eq!(
            ks,
            vec![
                TokenKind::LowerIdent("panic".into()),
                TokenKind::Implies,
                TokenKind::LowerIdent("emp".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("E".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("D".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("S".into()),
                TokenKind::RParen,
                TokenKind::Amp,
                TokenKind::UpperIdent("S".into()),
                TokenKind::Lt,
                TokenKind::Int(100),
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn lexes_all_comparison_operators() {
        assert_eq!(
            kinds("< <= = <> >= >"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ge,
                TokenKind::Gt
            ]
        );
    }

    #[test]
    fn lexes_not_and_identifiers() {
        assert_eq!(
            kinds("not dept(D)"),
            vec![
                TokenKind::Not,
                TokenKind::LowerIdent("dept".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("D".into()),
                TokenKind::RParen,
            ]
        );
        // `notx` is an identifier, not the keyword.
        assert_eq!(kinds("notx"), vec![TokenKind::LowerIdent("notx".into())]);
    }

    #[test]
    fn lexes_negative_integers() {
        assert_eq!(kinds("-42"), vec![TokenKind::Int(-42)]);
        assert_eq!(kinds("0"), vec![TokenKind::Int(0)]);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("% full-line comment\npanic. % trailing");
        assert_eq!(
            ks,
            vec![TokenKind::LowerIdent("panic".into()), TokenKind::Dot]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let ts = lex("p(X).\nq(Y).").unwrap();
        let q = ts
            .iter()
            .find(|t| t.kind == TokenKind::LowerIdent("q".into()))
            .unwrap();
        assert_eq!((q.line, q.col), (2, 1));
    }

    #[test]
    fn errors_on_bad_characters() {
        let err = lex("p(#)").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn errors_on_lone_colon_and_dash() {
        assert!(lex("p : q").is_err());
        assert!(lex("p - q").is_err());
    }

    #[test]
    fn errors_on_integer_overflow() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn underscore_leading_names_are_variables() {
        assert_eq!(kinds("_x"), vec![TokenKind::UpperIdent("_x".into())]);
    }
}
