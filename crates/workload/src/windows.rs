//! Forbidden-interval ("maintenance window") workloads for §5–§6.
//!
//! The local relation `l(Lo, Hi)` holds windows during which remote events
//! `r(Z)` are forbidden (Example 5.3). Generators control the number of
//! windows, their width, and how much they overlap — the knob that decides
//! how often an inserted window is already covered (the local test's hit
//! rate).

use ccpi_storage::{tuple, Relation, Tuple};
use rand::rngs::StdRng;
use rand::RngExt;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct WindowConfig {
    /// Number of windows in the local relation.
    pub windows: usize,
    /// The timeline is `[0, horizon)`.
    pub horizon: i64,
    /// Window width range (inclusive).
    pub width: (i64, i64),
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            windows: 1000,
            horizon: 100_000,
            width: (10, 500),
        }
    }
}

/// Generates the local relation of windows.
pub fn local_relation(cfg: &WindowConfig, rng: &mut StdRng) -> Relation {
    Relation::from_tuples(2, (0..cfg.windows).map(|_| window(cfg, rng)))
}

/// One random window tuple.
pub fn window(cfg: &WindowConfig, rng: &mut StdRng) -> Tuple {
    let w = rng.random_range(cfg.width.0..=cfg.width.1);
    let lo = rng.random_range(0..(cfg.horizon - w).max(1));
    tuple![lo, lo + w]
}

/// A stream of insert probes; roughly `covered_fraction` of them are
/// sub-windows of an existing window (and therefore certainly covered),
/// the rest are fresh random windows.
pub fn probe_stream(
    cfg: &WindowConfig,
    local: &Relation,
    covered_fraction: f64,
    rng: &mut StdRng,
    n: usize,
) -> Vec<Tuple> {
    let existing: Vec<Tuple> = local.iter().cloned().collect();
    (0..n)
        .map(|_| {
            if !existing.is_empty() && rng.random_bool(covered_fraction.clamp(0.0, 1.0)) {
                // Shrink an existing window: certainly covered.
                let base = &existing[rng.random_range(0..existing.len())];
                let (lo, hi) = (base[0].as_int().unwrap(), base[1].as_int().unwrap());
                if hi - lo >= 2 {
                    let a = rng.random_range(lo..hi);
                    let b = rng.random_range(a..=hi);
                    tuple![a, b]
                } else {
                    base.clone()
                }
            } else {
                window(cfg, rng)
            }
        })
        .collect()
}

/// A chain of `k` staggered windows `[2i, 2i+3]` — the §6 negative-result
/// family: covering the probe `[1, 2(k−1)+2]` requires all `k` tuples.
pub fn chain(k: usize) -> (Relation, Tuple) {
    let rel = Relation::from_tuples(2, (0..k as i64).map(|i| tuple![2 * i, 2 * i + 3]));
    let probe = tuple![1, 2 * (k as i64 - 1) + 2];
    (rel, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_within_horizon_and_ordered() {
        let cfg = WindowConfig::default();
        let rel = local_relation(&cfg, &mut crate::rng(5));
        assert!(rel.len() <= cfg.windows); // set semantics may dedup
        for t in rel.iter() {
            let (lo, hi) = (t[0].as_int().unwrap(), t[1].as_int().unwrap());
            assert!(lo <= hi);
            assert!(lo >= 0 && hi <= cfg.horizon + cfg.width.1);
        }
    }

    #[test]
    fn covered_probes_are_subwindows() {
        let cfg = WindowConfig {
            windows: 50,
            ..WindowConfig::default()
        };
        let mut rng = crate::rng(11);
        let rel = local_relation(&cfg, &mut rng);
        let probes = probe_stream(&cfg, &rel, 1.0, &mut rng, 100);
        for p in &probes {
            let (a, b) = (p[0].as_int().unwrap(), p[1].as_int().unwrap());
            assert!(
                rel.iter()
                    .any(|t| { t[0].as_int().unwrap() <= a && b <= t[1].as_int().unwrap() }),
                "{p}"
            );
        }
    }

    #[test]
    fn chain_probe_is_covered_only_by_the_full_chain() {
        let (rel, probe) = chain(6);
        assert_eq!(rel.len(), 6);
        assert_eq!(probe, tuple![1, 12]);
    }

    #[test]
    fn determinism() {
        let cfg = WindowConfig::default();
        let a: Vec<Tuple> = local_relation(&cfg, &mut crate::rng(2))
            .iter()
            .cloned()
            .collect();
        let b: Vec<Tuple> = local_relation(&cfg, &mut crate::rng(2))
            .iter()
            .cloned()
            .collect();
        assert_eq!(a, b);
    }
}
