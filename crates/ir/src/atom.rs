//! Atoms, comparisons and body literals.

use crate::sym::Sym;
use crate::term::{Term, Var};
use std::fmt;

/// An ordinary (uninterpreted-predicate) atom, e.g. `emp(E, D, S)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Predicate name (lower-case identifier).
    pub pred: Sym,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and arguments.
    pub fn new(pred: impl AsRef<str>, args: Vec<Term>) -> Self {
        Atom {
            pred: Sym::new(pred),
            args,
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables occurring in the atom (with repetition).
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.args.iter().filter_map(Term::as_var)
    }

    /// `true` if every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_const)
    }

    /// Same predicate name and arity as `other`? (The paper assumes each
    /// predicate has a unique arity; callers enforce that via catalogs.)
    pub fn same_signature(&self, other: &Atom) -> bool {
        self.pred == other.pred && self.arity() == other.arity()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Arithmetic comparison operators over the totally ordered domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CompOp {
    /// The operator with its sides swapped: `a op b` iff `b op.flip() a`.
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Ge => CompOp::Le,
            CompOp::Gt => CompOp::Lt,
        }
    }

    /// Logical negation: `¬(a op b)` iff `a op.negate() b`.
    pub fn negate(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Eq => CompOp::Ne,
            CompOp::Ne => CompOp::Eq,
            CompOp::Ge => CompOp::Lt,
            CompOp::Gt => CompOp::Le,
        }
    }

    /// Evaluates the operator on two ordered values.
    pub fn eval<T: Ord + ?Sized>(self, a: &T, b: &T) -> bool {
        match self {
            CompOp::Lt => a < b,
            CompOp::Le => a <= b,
            CompOp::Eq => a == b,
            CompOp::Ne => a != b,
            CompOp::Ge => a >= b,
            CompOp::Gt => a > b,
        }
    }

    /// The paper's concrete syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Ge => ">=",
            CompOp::Gt => ">",
        }
    }

    /// All six operators, for exhaustive tests and generators.
    pub const ALL: [CompOp; 6] = [
        CompOp::Lt,
        CompOp::Le,
        CompOp::Eq,
        CompOp::Ne,
        CompOp::Ge,
        CompOp::Gt,
    ];
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An arithmetic-comparison subgoal, e.g. `S < 100` or `X <= Z`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left-hand term.
    pub lhs: Term,
    /// The comparison operator.
    pub op: CompOp,
    /// Right-hand term.
    pub rhs: Term,
}

impl Comparison {
    /// Builds a comparison.
    pub fn new(lhs: impl Into<Term>, op: CompOp, rhs: impl Into<Term>) -> Self {
        Comparison {
            lhs: lhs.into(),
            op,
            rhs: rhs.into(),
        }
    }

    /// The comparison with both sides swapped (logically equivalent).
    pub fn flipped(&self) -> Comparison {
        Comparison {
            lhs: self.rhs.clone(),
            op: self.op.flip(),
            rhs: self.lhs.clone(),
        }
    }

    /// The logical negation of the comparison.
    pub fn negated(&self) -> Comparison {
        Comparison {
            lhs: self.lhs.clone(),
            op: self.op.negate(),
            rhs: self.rhs.clone(),
        }
    }

    /// Iterates over the variables of the comparison.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        [&self.lhs, &self.rhs].into_iter().filter_map(Term::as_var)
    }

    /// `true` when both sides are constants, i.e. the comparison is decided.
    pub fn is_ground(&self) -> bool {
        self.lhs.is_const() && self.rhs.is_const()
    }

    /// Evaluates a ground comparison; `None` when either side is a variable.
    pub fn eval_ground(&self) -> Option<bool> {
        match (&self.lhs, &self.rhs) {
            (Term::Const(a), Term::Const(b)) => Some(self.op.eval(a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl fmt::Debug for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A body literal: positive atom, negated atom, or comparison.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// An ordinary positive subgoal, e.g. `emp(E,D,S)`.
    Pos(Atom),
    /// A negated subgoal, e.g. `not dept(D)`.
    Neg(Atom),
    /// An arithmetic comparison, e.g. `S < 100`.
    Cmp(Comparison),
}

impl Literal {
    /// The ordinary atom inside the literal, for `Pos`/`Neg`.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(_) => None,
        }
    }

    /// Iterates over variables in the literal (with repetition).
    pub fn vars(&self) -> Box<dyn Iterator<Item = &Var> + '_> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Box::new(a.vars()),
            Literal::Cmp(c) => Box::new(c.vars()),
        }
    }

    /// `true` for positive ordinary subgoals.
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    /// `true` for negated subgoals.
    pub fn is_negated(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }

    /// `true` for comparison subgoals.
    pub fn is_comparison(&self) -> bool {
        matches!(self, Literal::Cmp(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Atom> for Literal {
    fn from(a: Atom) -> Self {
        Literal::Pos(a)
    }
}

impl From<Comparison> for Literal {
    fn from(c: Comparison) -> Self {
        Literal::Cmp(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Atom {
        Atom::new("emp", vec![Term::var("E"), Term::var("D"), Term::var("S")])
    }

    #[test]
    fn atom_display_matches_paper_syntax() {
        assert_eq!(emp().to_string(), "emp(E,D,S)");
        assert_eq!(Atom::new("panic", vec![]).to_string(), "panic");
    }

    #[test]
    fn atom_vars_and_groundness() {
        let a = Atom::new(
            "emp",
            vec![Term::sym("jones"), Term::var("D"), Term::int(50)],
        );
        let vars: Vec<_> = a.vars().map(|v| v.name().to_string()).collect();
        assert_eq!(vars, vec!["D"]);
        assert!(!a.is_ground());
        let g = Atom::new("dept", vec![Term::sym("toy")]);
        assert!(g.is_ground());
    }

    #[test]
    fn compop_flip_is_involutive_and_correct() {
        for op in CompOp::ALL {
            assert_eq!(op.flip().flip(), op);
            // a op b  <=>  b flip(op) a on a sample of pairs
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a), "{op}");
            }
        }
    }

    #[test]
    fn compop_negate_is_logical_complement() {
        for op in CompOp::ALL {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.eval(&a, &b), !op.negate().eval(&a, &b), "{op}");
            }
        }
    }

    #[test]
    fn comparison_negated_and_flipped() {
        let c = Comparison::new(Term::var("S"), CompOp::Lt, Term::int(100));
        assert_eq!(c.to_string(), "S < 100");
        assert_eq!(c.negated().to_string(), "S >= 100");
        assert_eq!(c.flipped().to_string(), "100 > S");
    }

    #[test]
    fn comparison_ground_evaluation() {
        let c = Comparison::new(Term::int(3), CompOp::Le, Term::int(6));
        assert_eq!(c.eval_ground(), Some(true));
        let c = Comparison::new(Term::sym("shoe"), CompOp::Ne, Term::sym("toy"));
        assert_eq!(c.eval_ground(), Some(true));
        let c = Comparison::new(Term::var("X"), CompOp::Le, Term::int(6));
        assert_eq!(c.eval_ground(), None);
        assert!(!c.is_ground());
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Pos(emp()).to_string(), "emp(E,D,S)");
        assert_eq!(
            Literal::Neg(Atom::new("dept", vec![Term::var("D")])).to_string(),
            "not dept(D)"
        );
        let c = Comparison::new(Term::var("S"), CompOp::Gt, Term::int(100));
        assert_eq!(Literal::Cmp(c).to_string(), "S > 100");
    }

    #[test]
    fn literal_kind_predicates() {
        let p = Literal::Pos(emp());
        let n = Literal::Neg(emp());
        let c = Literal::Cmp(Comparison::new(Term::var("X"), CompOp::Eq, Term::var("Y")));
        assert!(p.is_positive() && !p.is_negated() && !p.is_comparison());
        assert!(n.is_negated() && !n.is_positive());
        assert!(c.is_comparison() && c.atom().is_none());
        assert!(p.atom().is_some());
    }
}
