//! Compiled weakest-precondition pre-tests, one per
//! (constraint, update-template) pair.
//!
//! The escalation ladder decides per update at runtime, but most of the
//! decision is knowable at *registration* time from the shape of the
//! update alone: which body occurrences a `+p(t̄)`/`-p(t̄)` can enter,
//! which comparisons the Δ-tuple will ground, and what is left of the
//! body once the hosting occurrence is discharged. Following the
//! simplification tradition (Nicolas's instantiation method, and its
//! modern weakest-precondition formulations — Martinenghi,
//! arXiv 2412.20871; Aït-Bouziad/Guessarian/Vieille, cs/0603053), this
//! module compiles, once per constraint and per [`UpdateTemplate`], a
//! **simplified pre-test**: the constraint body instantiated with a
//! parameterized Δ-tuple, with the hosting literal discharged and every
//! comparison the instantiation grounds partially evaluated through
//! `ccpi-arith`. At check time the pre-test either
//!
//! * settles the update with a **verdict** (holds / violated) — the
//!   residual is empty, ground, or a single filtered existence scan — or
//! * reports the update **untouched** (no occurrence unifies, or the
//!   instantiation falsifies the arithmetic: exactly the §4 independence
//!   answer, for free), or
//! * **escalates**, when the residual still quantifies over two or more
//!   relations and the ladder's heavier stages are the right tool.
//!
//! Soundness needs no standing assumption for *violated* (the pre-test
//! exhibits a concrete `panic` derivation in the post-state) and the
//! usual "constraints held before the update" assumption for *holds* —
//! the same contract as the delta-seeded stage 4.
//!
//! Pre-tests are compiled only for **flat** constraints (every rule a
//! `panic` rule over EDB relations). Through IDB indirection an update's
//! polarity can flip, so occurrence-hosting reasoning is no longer
//! exact; non-flat constraints keep the classic ladder.

use ccpi_arith::Solver;
use ccpi_ir::{Atom, Comparison, Constraint, Cq, Subst, Sym, Term, Value, Var, PANIC};
use ccpi_storage::{Database, Tuple, Update, UpdateTemplate};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How much work the compiled residual needs at check time. Ordered from
/// cheapest to most expensive; a template's class is the worst over its
/// hosts, and the stage pipeline orders stages by it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ResidualClass {
    /// No body occurrence can ever host this template: the pre-test is a
    /// constant *holds* (the update is independent by shape alone).
    Untouchable,
    /// The residual is comparisons only — a verdict with zero reads.
    Verdict,
    /// The residual is ground atoms: a few membership probes.
    GroundProbe,
    /// One residual atom keeps free variables: a single filtered
    /// existence scan (index probe when a column is bound).
    FilteredScan,
    /// Two or more residual atoms keep free variables: the pre-test may
    /// escalate to the ladder.
    Open,
}

impl fmt::Display for ResidualClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResidualClass::Untouchable => "untouchable",
            ResidualClass::Verdict => "verdict",
            ResidualClass::GroundProbe => "ground-probe",
            ResidualClass::FilteredScan => "filtered-scan",
            ResidualClass::Open => "open",
        })
    }
}

/// What one evaluation of a pre-test concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreVerdict {
    /// No occurrence hosts the Δ-tuple (or the instantiated arithmetic
    /// is unsatisfiable): the update cannot touch the constraint.
    Untouched,
    /// Every surviving residual was evaluated and none fires.
    Holds,
    /// Some residual fires: a concrete `panic` derivation exists in the
    /// post-state.
    Violated,
    /// A surviving host's residual is open — escalate to the ladder.
    Escalate,
}

/// One evaluation's result plus what it cost: rows read from relations
/// the caller marked as costed (the manager passes "declared remote"),
/// so settled checks account reads exactly like the stages they replace.
#[derive(Clone, Copy, Debug)]
pub struct PreTestEval {
    /// The conclusion.
    pub verdict: PreVerdict,
    /// Tuples read from costed relations.
    pub tuples_read: u64,
    /// Bytes those tuples would transfer on the wire.
    pub bytes_read: u64,
}

/// One hosting occurrence, compiled: the host atom pattern and the
/// residual body with the host discharged.
#[derive(Clone, Debug)]
struct CompiledHost {
    /// The occurrence the Δ-tuple must unify with. For insertions a
    /// positive subgoal (satisfied by the insert itself), for deletions a
    /// negated one (satisfied by the delete itself) — either way the
    /// literal is discharged and drops out of the residual.
    host: Atom,
    /// Residual positive subgoals.
    positives: Vec<Atom>,
    /// Residual negated subgoals.
    negatives: Vec<Atom>,
    /// The rule's comparisons (partially evaluated at check time).
    comparisons: Vec<Comparison>,
    /// Index into `positives` of the single non-groundable atom, for
    /// [`ResidualClass::FilteredScan`] hosts.
    scan: Option<usize>,
    /// Indices into `positives` of atoms that keep free variables but are
    /// fully grounded by each scan row — probed *after* the row extends the
    /// binding. Non-empty only when a multi-free-atom residual downgraded to
    /// `FilteredScan` because the scan atom covers every unbound variable.
    late: Vec<usize>,
    /// This host's residual class (`Verdict`..`Open`).
    class: ResidualClass,
}

/// The compiled pre-test for one update template.
#[derive(Clone, Debug, Default)]
pub struct TemplatePreTest {
    hosts: Vec<CompiledHost>,
    class: Option<ResidualClass>,
    reads: BTreeSet<Sym>,
}

impl TemplatePreTest {
    /// The template's residual class — the worst over its hosts,
    /// [`ResidualClass::Untouchable`] when nothing can host.
    pub fn residual_class(&self) -> ResidualClass {
        self.class.unwrap_or(ResidualClass::Untouchable)
    }

    /// Relations the evaluable residuals read (open hosts never read).
    pub fn reads(&self) -> &BTreeSet<Sym> {
        &self.reads
    }

    /// Number of hosting occurrences compiled for the template.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    fn finalize(&mut self) {
        for host in &self.hosts {
            self.class = Some(self.class.unwrap_or(host.class).max(host.class));
            if host.class < ResidualClass::Open {
                for atom in host.positives.iter().chain(&host.negatives) {
                    self.reads.insert(atom.pred.clone());
                }
            }
        }
    }
}

/// The full pre-test set of one constraint: one compiled
/// [`TemplatePreTest`] per (sign × read relation).
#[derive(Clone, Debug, Default)]
pub struct PreTestSet {
    flat: bool,
    templates: BTreeMap<UpdateTemplate, TemplatePreTest>,
}

impl PreTestSet {
    /// Compiles the pre-test set for `c`. For non-flat constraints the
    /// set is empty and [`compiled`](PreTestSet::compiled) is `false`.
    pub fn compile(c: &Constraint) -> PreTestSet {
        let rules = &c.program().rules;
        let flat = rules.iter().all(|r| {
            r.head.pred.as_str() == PANIC
                && r.positive_subgoals()
                    .chain(r.negated_subgoals())
                    .all(|a| a.pred.as_str() != PANIC)
        });
        if !flat {
            return PreTestSet::default();
        }
        let mut templates: BTreeMap<UpdateTemplate, TemplatePreTest> = BTreeMap::new();
        for pred in c.program().edb_predicates() {
            templates.insert(UpdateTemplate::insert(pred.as_str()), Default::default());
            templates.insert(UpdateTemplate::delete(pred.as_str()), Default::default());
        }
        for rule in rules {
            let cq = Cq::from_rule(rule);
            for insert in [true, false] {
                let occurrences = if insert { &cq.positives } else { &cq.negatives };
                for (host_idx, occurrence) in occurrences.iter().enumerate() {
                    let host = compile_host(&cq, insert, host_idx);
                    let key = UpdateTemplate {
                        insert,
                        pred: occurrence.pred.clone(),
                    };
                    templates.entry(key).or_default().hosts.push(host);
                }
            }
        }
        for t in templates.values_mut() {
            t.finalize();
        }
        PreTestSet { flat, templates }
    }

    /// `true` when the constraint was flat and pre-tests exist.
    pub fn compiled(&self) -> bool {
        self.flat
    }

    /// The compiled pre-test for `template`, if the constraint reads the
    /// predicate at all.
    pub fn template(&self, template: &UpdateTemplate) -> Option<&TemplatePreTest> {
        self.templates.get(template)
    }

    /// Iterates every compiled template — one insert and one delete
    /// template per EDB predicate the constraint reads.
    pub fn templates(&self) -> impl Iterator<Item = (&UpdateTemplate, &TemplatePreTest)> {
        self.templates.iter()
    }

    /// Host filtering only — the ground-prefilter half of the pre-test:
    /// [`PreVerdict::Untouched`] when no occurrence hosts the Δ-tuple,
    /// [`PreVerdict::Escalate`] otherwise. Zero reads by construction.
    pub fn prefilter(&self, update: &Update, solver: Solver) -> PreVerdict {
        if !self.flat {
            return PreVerdict::Escalate;
        }
        match self.templates.get(&UpdateTemplate::of(update)) {
            None => PreVerdict::Untouched, // predicate unread by the constraint
            Some(t) if surviving_hosts(t, update, solver).is_empty() => PreVerdict::Untouched,
            Some(_) => PreVerdict::Escalate,
        }
    }

    /// Evaluates the pre-test for `update` against `db` (taken as the
    /// **pre**-update state; the residual reads through a Δ-adjusted
    /// post-view). `costed` marks relations whose reads are accounted.
    pub fn eval(
        &self,
        db: &Database,
        update: &Update,
        solver: Solver,
        costed: &dyn Fn(&str) -> bool,
    ) -> PreTestEval {
        let mut eval = PreTestEval {
            verdict: PreVerdict::Escalate,
            tuples_read: 0,
            bytes_read: 0,
        };
        if !self.flat {
            return eval;
        }
        let Some(template) = self.templates.get(&UpdateTemplate::of(update)) else {
            eval.verdict = PreVerdict::Untouched;
            return eval;
        };
        let survivors = surviving_hosts(template, update, solver);
        if survivors.is_empty() {
            eval.verdict = PreVerdict::Untouched;
            return eval;
        }
        let view = PostView { db, update };
        let mut open = false;
        for (host, binding) in survivors {
            if host.class == ResidualClass::Open {
                open = true;
                continue;
            }
            if residual_fires(host, &binding, &view, costed, &mut eval) {
                eval.verdict = PreVerdict::Violated;
                return eval;
            }
        }
        eval.verdict = if open {
            PreVerdict::Escalate
        } else {
            PreVerdict::Holds
        };
        eval
    }
}

/// Compiles one hosting occurrence of a rule body.
fn compile_host(cq: &Cq, insert: bool, host_idx: usize) -> CompiledHost {
    let (host, positives, negatives): (Atom, Vec<Atom>, Vec<Atom>) = if insert {
        let mut positives = cq.positives.clone();
        let host = positives.remove(host_idx);
        (host, positives, cq.negatives.clone())
    } else {
        let mut negatives = cq.negatives.clone();
        let host = negatives.remove(host_idx);
        (host, cq.positives.clone(), negatives)
    };
    let bound: BTreeSet<&Var> = host.args.iter().filter_map(Term::as_var).collect();
    let free: Vec<usize> = positives
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.args
                .iter()
                .filter_map(Term::as_var)
                .any(|v| !bound.contains(v))
        })
        .map(|(i, _)| i)
        .collect();
    let unbound_of = |i: usize| -> BTreeSet<&Var> {
        positives[i]
            .args
            .iter()
            .filter_map(Term::as_var)
            .filter(|v| !bound.contains(*v))
            .collect()
    };
    let (class, scan, late) = if positives.is_empty() && negatives.is_empty() {
        (ResidualClass::Verdict, None, Vec::new())
    } else if free.is_empty() {
        (ResidualClass::GroundProbe, None, Vec::new())
    } else if free.len() == 1 {
        (ResidualClass::FilteredScan, Some(free[0]), Vec::new())
    } else {
        // Several atoms keep free variables — but if one of them mentions
        // *every* unbound variable, a single scan of that atom grounds the
        // whole residual and the other free atoms become per-row point
        // probes ("late probes"). Deletes hit this shape constantly: the
        // deleted tuple binds one column and the referencing relation
        // carries the rest. Prefer a scan atom with a bound column so the
        // scan is an index probe rather than a full pass.
        let all: BTreeSet<&Var> = free.iter().flat_map(|&i| unbound_of(i)).collect();
        let covering: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| unbound_of(i) == all)
            .collect();
        let has_bound_col = |i: &usize| {
            positives[*i].args.iter().any(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            })
        };
        match covering
            .iter()
            .find(|i| has_bound_col(i))
            .or_else(|| covering.first())
        {
            Some(&s) => (
                ResidualClass::FilteredScan,
                Some(s),
                free.iter().copied().filter(|&i| i != s).collect(),
            ),
            None => (ResidualClass::Open, None, Vec::new()),
        }
    };
    CompiledHost {
        host,
        positives,
        negatives,
        comparisons: cq.comparisons.clone(),
        scan,
        late,
        class,
    }
}

/// Unifies the Δ-tuple with a host atom: constants must match, repeated
/// variables must bind consistently. `None` when the occurrence cannot
/// host the tuple.
fn unify(atom: &Atom, tuple: &Tuple) -> Option<BTreeMap<Var, Value>> {
    if atom.arity() != tuple.arity() {
        return None;
    }
    let mut binding: BTreeMap<Var, Value> = BTreeMap::new();
    for (term, value) in atom.args.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(bound) if bound != value => return None,
                _ => {
                    binding.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(binding)
}

/// The substitution a binding induces (vars map to ground terms).
fn to_subst(binding: &BTreeMap<Var, Value>) -> Subst {
    Subst::from_pairs(
        binding
            .iter()
            .map(|(v, val)| (v.clone(), Term::Const(val.clone()))),
    )
}

/// Hosts of `template` the Δ-tuple survives: unification succeeds, no
/// grounded comparison is false, and the still-open comparisons remain
/// jointly satisfiable under `ccpi-arith`.
fn surviving_hosts<'a>(
    template: &'a TemplatePreTest,
    update: &Update,
    solver: Solver,
) -> Vec<(&'a CompiledHost, BTreeMap<Var, Value>)> {
    let mut out = Vec::new();
    'hosts: for host in &template.hosts {
        let Some(binding) = unify(&host.host, update.tuple()) else {
            continue;
        };
        let subst = to_subst(&binding);
        let mut still_open: Vec<Comparison> = Vec::new();
        for cmp in &host.comparisons {
            let inst = subst.apply_cmp(cmp);
            match inst.eval_ground() {
                Some(false) => continue 'hosts,
                Some(true) => {}
                None => still_open.push(inst),
            }
        }
        if !still_open.is_empty() && !solver.sat(&still_open) {
            continue;
        }
        out.push((host, binding));
    }
    out
}

/// The post-update state, read through the pre-update database plus the
/// Δ: inserts are visible, the deleted tuple is not. This is what makes
/// a *violated* verdict a real derivation — the residual is evaluated in
/// exactly the state the full check would rebuild.
struct PostView<'a> {
    db: &'a Database,
    update: &'a Update,
}

impl PostView<'_> {
    fn contains(&self, pred: &str, t: &Tuple) -> bool {
        match self.update {
            Update::Insert { pred: p, tuple } if p.as_str() == pred && tuple == t => return true,
            Update::Delete { pred: p, tuple } if p.as_str() == pred && tuple == t => return false,
            _ => {}
        }
        self.db
            .relation(pred)
            .map(|r| r.contains(t))
            .unwrap_or(false)
    }
}

/// Accounts one row read from `pred` when the caller costs it.
fn account(eval: &mut PreTestEval, costed: &dyn Fn(&str) -> bool, pred: &str, t: &Tuple) {
    if costed(pred) {
        eval.tuples_read += 1;
        eval.bytes_read += t.transfer_bytes() as u64;
    }
}

/// Does this host's residual fire in the post-state under `binding`?
/// Ground probes first (cheap, and independent of the scan variables),
/// then the single filtered scan if the class has one.
fn residual_fires(
    host: &CompiledHost,
    binding: &BTreeMap<Var, Value>,
    view: &PostView<'_>,
    costed: &dyn Fn(&str) -> bool,
    eval: &mut PreTestEval,
) -> bool {
    let subst = to_subst(binding);
    // Ground positive probes: every one must be present post-update. Late
    // atoms wait for a scan row to ground them.
    for (i, atom) in host.positives.iter().enumerate() {
        if host.scan == Some(i) || host.late.contains(&i) {
            continue;
        }
        let t = ground_tuple(&subst.apply_atom(atom))
            .expect("non-scan residual positives are ground by compilation");
        account(eval, costed, atom.pred.as_str(), &t);
        if !view.contains(atom.pred.as_str(), &t) {
            return false;
        }
    }
    let Some(scan_idx) = host.scan else {
        // Fully ground residual: the negated subgoals decide it.
        for atom in &host.negatives {
            let t = ground_tuple(&subst.apply_atom(atom))
                .expect("ground-probe residual negatives are ground by compilation");
            account(eval, costed, atom.pred.as_str(), &t);
            if view.contains(atom.pred.as_str(), &t) {
                return false;
            }
        }
        return true;
    };
    // Filtered existence scan: rows of the one open atom, constrained by
    // the bound columns (index probe when possible), each extending the
    // binding to a fully ground residual.
    let atom = &host.positives[scan_idx];
    let pattern: Vec<Term> = atom.args.iter().map(|t| subst.apply_term(t)).collect();
    let pred = atom.pred.as_str();
    let rel = view.db.relation(pred);
    let probe_col = pattern.iter().position(Term::is_const);
    let base: Vec<Tuple> = match (rel, probe_col) {
        (Some(rel), Some(col)) => {
            let Term::Const(v) = &pattern[col] else {
                unreachable!()
            };
            rel.probe(col, v).as_slice().to_vec()
        }
        (Some(rel), None) => rel.iter().cloned().collect(),
        (None, _) => Vec::new(),
    };
    // The Δ-tuple joins the scan when it lands in this relation, matches
    // the bound columns, and is genuinely new.
    let delta_row = match view.update {
        Update::Insert { pred: p, tuple }
            if p.as_str() == pred
                && tuple.arity() == pattern.len()
                && !base.contains(tuple)
                && pattern.iter().zip(tuple.iter()).all(|(t, v)| match t {
                    Term::Const(c) => c == v,
                    Term::Var(_) => true,
                }) =>
        {
            Some(tuple.clone())
        }
        _ => None,
    };
    for row in base.iter().chain(delta_row.iter()) {
        if let Update::Delete { pred: p, tuple } = view.update {
            if p.as_str() == pred && tuple == row {
                continue;
            }
        }
        account(eval, costed, pred, row);
        // Extend the binding with the row (repeated/bound vars must agree).
        let mut extended = binding.clone();
        let mut ok = true;
        for (term, value) in atom.args.iter().zip(row.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match extended.get(v) {
                    Some(bound) if bound != value => {
                        ok = false;
                        break;
                    }
                    _ => {
                        extended.insert(v.clone(), value.clone());
                    }
                },
            }
        }
        if !ok {
            continue;
        }
        let row_subst = to_subst(&extended);
        if !host
            .comparisons
            .iter()
            .all(|c| row_subst.apply_cmp(c).eval_ground().unwrap_or(false))
        {
            continue;
        }
        // Late probes: free atoms the scan row just grounded. All must be
        // present post-update for this row to witness a violation.
        let mut late_missing = false;
        for &li in &host.late {
            let atom = &host.positives[li];
            let t = ground_tuple(&row_subst.apply_atom(atom))
                .expect("the scan atom covers every unbound variable of late probes");
            account(eval, costed, atom.pred.as_str(), &t);
            if !view.contains(atom.pred.as_str(), &t) {
                late_missing = true;
                break;
            }
        }
        if late_missing {
            continue;
        }
        let mut negated_holds = false;
        for neg in &host.negatives {
            let t = ground_tuple(&row_subst.apply_atom(neg))
                .expect("scan rows ground every residual variable");
            account(eval, costed, neg.pred.as_str(), &t);
            if view.contains(neg.pred.as_str(), &t) {
                negated_holds = true;
                break;
            }
        }
        if negated_holds {
            continue;
        }
        return true;
    }
    false
}

/// The tuple a fully ground atom denotes; `None` if any term is a var.
fn ground_tuple(atom: &Atom) -> Option<Tuple> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(_) => None,
        })
        .collect::<Option<Vec<Value>>>()
        .map(Tuple::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_constraint;
    use ccpi_storage::{tuple, Locality};

    fn referential() -> Constraint {
        parse_constraint("panic :- emp(E,D,S) & not dept(D).").unwrap()
    }

    fn floor() -> Constraint {
        parse_constraint("panic :- emp(E,D,S) & salRange(D,L,H) & S < L.").unwrap()
    }

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db.declare("salRange", 3, Locality::Remote).unwrap();
        db.insert("emp", tuple!["ann", "sales", 80]).unwrap();
        db.insert("dept", tuple!["sales"]).unwrap();
        db.insert("dept", tuple!["toys"]).unwrap();
        db.insert("salRange", tuple!["sales", 10, 200]).unwrap();
        db
    }

    fn solver() -> Solver {
        Solver::integer()
    }

    fn run(c: &Constraint, db: &Database, u: &Update) -> PreTestEval {
        PreTestSet::compile(c).eval(db, u, solver(), &|p| {
            db.locality(p) == Some(Locality::Remote)
        })
    }

    #[test]
    fn referential_insert_compiles_to_a_ground_probe() {
        let set = PreTestSet::compile(&referential());
        assert!(set.compiled());
        let t = set.template(&UpdateTemplate::insert("emp")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::GroundProbe);
        assert_eq!(t.host_count(), 1);
        assert!(t.reads().iter().any(|p| p.as_str() == "dept"));
        // Deleting from `emp` has no negated occurrence to host at.
        let del = set.template(&UpdateTemplate::delete("emp")).unwrap();
        assert_eq!(del.residual_class(), ResidualClass::Untouchable);
    }

    #[test]
    fn referential_insert_settles_both_ways() {
        let db = emp_db();
        let ok = run(
            &referential(),
            &db,
            &Update::insert("emp", tuple!["bob", "toys", 95]),
        );
        assert_eq!(ok.verdict, PreVerdict::Holds);
        assert!(ok.tuples_read > 0, "the dept probe is a remote read");
        let bad = run(
            &referential(),
            &db,
            &Update::insert("emp", tuple!["eve", "ghost", 50]),
        );
        assert_eq!(bad.verdict, PreVerdict::Violated);
    }

    #[test]
    fn floor_insert_is_a_filtered_scan_on_sal_range() {
        let set = PreTestSet::compile(&floor());
        let t = set.template(&UpdateTemplate::insert("emp")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::FilteredScan);
        let db = emp_db();
        let ok = run(
            &floor(),
            &db,
            &Update::insert("emp", tuple!["bob", "sales", 80]),
        );
        assert_eq!(ok.verdict, PreVerdict::Holds);
        let bad = run(
            &floor(),
            &db,
            &Update::insert("emp", tuple!["eve", "sales", 5]),
        );
        assert_eq!(bad.verdict, PreVerdict::Violated);
        // No salRange row for the department: the scan is empty, holds.
        let none = run(
            &floor(),
            &db,
            &Update::insert("emp", tuple!["eve", "toys", 5]),
        );
        assert_eq!(none.verdict, PreVerdict::Holds);
    }

    #[test]
    fn unrelated_updates_are_untouched() {
        let db = emp_db();
        // Inserting a department only shrinks `not dept(D)`.
        let e = run(&referential(), &db, &Update::insert("dept", tuple!["ops"]));
        assert_eq!(e.verdict, PreVerdict::Untouched);
        assert_eq!(e.tuples_read, 0);
        // A predicate the constraint never reads.
        let e = run(
            &referential(),
            &db,
            &Update::insert("manager", tuple!["a", "b"]),
        );
        assert_eq!(e.verdict, PreVerdict::Untouched);
    }

    #[test]
    fn deletion_hosts_at_the_negated_occurrence() {
        let set = PreTestSet::compile(&referential());
        let t = set.template(&UpdateTemplate::delete("dept")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::FilteredScan);
        let db = emp_db();
        // sales still employs ann: deleting it fires the residual scan.
        let bad = run(
            &referential(),
            &db,
            &Update::delete("dept", tuple!["sales"]),
        );
        assert_eq!(bad.verdict, PreVerdict::Violated);
        // toys employs nobody: the delete is clean.
        let ok = run(&referential(), &db, &Update::delete("dept", tuple!["toys"]));
        assert_eq!(ok.verdict, PreVerdict::Holds);
    }

    #[test]
    fn grounded_comparisons_falsify_hosts() {
        let c = parse_constraint("panic :- acct(I,A) & A < 0.").unwrap();
        let mut db = Database::new();
        db.declare("acct", 2, Locality::Local).unwrap();
        let set = PreTestSet::compile(&c);
        let t = set.template(&UpdateTemplate::insert("acct")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::Verdict);
        let clean = run(&c, &db, &Update::insert("acct", tuple![7, 5]));
        assert_eq!(clean.verdict, PreVerdict::Untouched);
        let bad = run(&c, &db, &Update::insert("acct", tuple![7, -5]));
        assert_eq!(bad.verdict, PreVerdict::Violated);
        assert_eq!(bad.tuples_read, 0, "a verdict residual reads nothing");
    }

    #[test]
    fn unsatisfiable_open_comparisons_falsify_hosts() {
        // After binding X, the residual comparisons box L into an empty
        // interval: the arith solver rejects the host without reading.
        let c = parse_constraint("panic :- p(X) & lim(L) & X < L & L < X.").unwrap();
        let mut db = Database::new();
        db.declare("p", 1, Locality::Local).unwrap();
        db.declare("lim", 1, Locality::Local).unwrap();
        db.insert("lim", tuple![10]).unwrap();
        let e = run(&c, &db, &Update::insert("p", tuple![5]));
        assert_eq!(e.verdict, PreVerdict::Untouched);
    }

    #[test]
    fn self_joins_host_at_every_occurrence_and_see_the_delta() {
        let c = parse_constraint("panic :- p(X,Y) & p(Y,Z) & X < Z.").unwrap();
        let mut db = Database::new();
        db.declare("p", 2, Locality::Local).unwrap();
        db.insert("p", tuple![2, 3]).unwrap();
        // (1,2) joins the existing (2,3): 1 < 3 fires via the first
        // occurrence hosting.
        let bad = run(&c, &db, &Update::insert("p", tuple![1, 2]));
        assert_eq!(bad.verdict, PreVerdict::Violated);
        // (1,1) must see itself at the second occurrence, but 1 < 1 fails.
        let mut empty = Database::new();
        empty.declare("p", 2, Locality::Local).unwrap();
        let ok = run(&c, &empty, &Update::insert("p", tuple![1, 1]));
        assert_eq!(ok.verdict, PreVerdict::Holds);
        // (0,1) into empty db: joins itself at (1,?) — nothing there.
        let ok = run(&c, &empty, &Update::insert("p", tuple![0, 1]));
        assert_eq!(ok.verdict, PreVerdict::Holds);
    }

    #[test]
    fn two_open_atoms_escalate() {
        // p contributes Y, q contributes Z, and neither atom mentions both:
        // no single scan grounds the residual, so this genuinely escalates.
        let c = parse_constraint("panic :- a(X) & p(X,Y) & q(X,Z).").unwrap();
        let mut db = Database::new();
        db.declare("a", 1, Locality::Local).unwrap();
        db.declare("p", 2, Locality::Local).unwrap();
        db.declare("q", 2, Locality::Local).unwrap();
        let set = PreTestSet::compile(&c);
        let t = set.template(&UpdateTemplate::insert("a")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::Open);
        let e = run(&c, &db, &Update::insert("a", tuple![1]));
        assert_eq!(e.verdict, PreVerdict::Escalate);
        // But the prefilter half still rules out non-hosting tuples.
        let c2 = parse_constraint("panic :- a(X) & p(X,Y) & q(X,Z) & X > 5.").unwrap();
        let set2 = PreTestSet::compile(&c2);
        assert_eq!(
            set2.prefilter(&Update::insert("a", tuple![1]), solver()),
            PreVerdict::Untouched
        );
        assert_eq!(
            set2.prefilter(&Update::insert("a", tuple![9]), solver()),
            PreVerdict::Escalate
        );
    }

    #[test]
    fn covering_scan_atom_downgrades_open_to_filtered_scan() {
        // q(Y,Z) mentions every unbound variable: scanning q grounds the
        // whole residual and p(X,Y) becomes a per-row late probe. This
        // shape used to escalate.
        let c = parse_constraint("panic :- a(X) & p(X,Y) & q(Y,Z).").unwrap();
        let set = PreTestSet::compile(&c);
        let t = set.template(&UpdateTemplate::insert("a")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::FilteredScan);

        let mut db = Database::new();
        db.declare("a", 1, Locality::Local).unwrap();
        db.declare("p", 2, Locality::Local).unwrap();
        db.declare("q", 2, Locality::Local).unwrap();
        db.insert("p", tuple![1, 7]).unwrap();
        db.insert("q", tuple![8, 9]).unwrap();
        // No q row whose Y has a matching p(1,Y): holds.
        assert_eq!(
            run(&c, &db, &Update::insert("a", tuple![1])).verdict,
            PreVerdict::Holds
        );
        // Now q(7,9) joins p(1,7): inserting a(1) completes the witness.
        db.insert("q", tuple![7, 9]).unwrap();
        assert_eq!(
            run(&c, &db, &Update::insert("a", tuple![1])).verdict,
            PreVerdict::Violated
        );
    }

    #[test]
    fn delete_with_joined_residual_settles_via_late_probes() {
        // Referential shape with an extra join: deleting dept(D) violates
        // iff some emp row references D *and* that emp is still active.
        // The residual after hosting the delete keeps two free atoms
        // (emp contributes E and S, active only E), but emp covers every
        // unbound variable — FilteredScan with active as a late probe,
        // where this previously fell through to the ladder.
        let c = parse_constraint("panic :- emp(E,D,S) & active(E,D) & not dept(D).").unwrap();
        let set = PreTestSet::compile(&c);
        let t = set.template(&UpdateTemplate::delete("dept")).unwrap();
        assert_eq!(t.residual_class(), ResidualClass::FilteredScan);

        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("active", 2, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Local).unwrap();
        db.insert("emp", tuple!["jones", "shoe", 50]).unwrap();
        db.insert("emp", tuple!["smith", "sales", 70]).unwrap();
        db.insert("active", tuple!["jones", "shoe"]).unwrap();
        db.insert("dept", tuple!["shoe"]).unwrap();
        db.insert("dept", tuple!["sales"]).unwrap();

        // shoe is referenced by an active emp: the delete trips the scan
        // (index probe on D) plus the late probe on active.
        assert_eq!(
            run(&c, &db, &Update::delete("dept", tuple!["shoe"])).verdict,
            PreVerdict::Violated
        );
        // sales is referenced but smith is not active: the late probe
        // clears the row and the delete holds.
        assert_eq!(
            run(&c, &db, &Update::delete("dept", tuple!["sales"])).verdict,
            PreVerdict::Holds
        );
    }

    #[test]
    fn monotone_and_ground_probe_deletes_settle() {
        // Deleting a tuple of the *restricted* relation is monotone: the
        // delete hosts no negated occurrence, the prefilter reports
        // Untouched, and zero rows are read.
        let c = referential();
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Local).unwrap();
        db.insert("emp", tuple!["jones", "shoe", 50]).unwrap();
        db.insert("dept", tuple!["shoe"]).unwrap();
        let e = run(&c, &db, &Update::delete("emp", tuple!["jones", "shoe", 50]));
        assert_eq!(e.verdict, PreVerdict::Untouched);
        assert_eq!(e.tuples_read, 0);

        // Fully keyed referential shape: deleting an allowed(K,V) pair is a
        // single ground probe of config — no scan at all.
        let c2 = parse_constraint("panic :- config(K,V) & not allowed(K,V).").unwrap();
        let set2 = PreTestSet::compile(&c2);
        let t2 = set2.template(&UpdateTemplate::delete("allowed")).unwrap();
        assert_eq!(t2.residual_class(), ResidualClass::GroundProbe);
        let mut db2 = Database::new();
        db2.declare("config", 2, Locality::Local).unwrap();
        db2.declare("allowed", 2, Locality::Local).unwrap();
        db2.insert("config", tuple!["mode", "fast"]).unwrap();
        db2.insert("allowed", tuple!["mode", "fast"]).unwrap();
        db2.insert("allowed", tuple!["mode", "slow"]).unwrap();
        assert_eq!(
            run(
                &c2,
                &db2,
                &Update::delete("allowed", tuple!["mode", "fast"])
            )
            .verdict,
            PreVerdict::Violated
        );
        assert_eq!(
            run(
                &c2,
                &db2,
                &Update::delete("allowed", tuple!["mode", "slow"])
            )
            .verdict,
            PreVerdict::Holds
        );
    }

    #[test]
    fn non_flat_constraints_compile_nothing() {
        let c =
            parse_constraint("bad(E) :- emp(E,D,S) & not dept(D).\npanic :- emp(E,D,S) & bad(E).")
                .unwrap();
        let set = PreTestSet::compile(&c);
        assert!(!set.compiled());
        let db = emp_db();
        let e = set.eval(
            &db,
            &Update::insert("emp", tuple!["eve", "ghost", 1]),
            solver(),
            &|_| false,
        );
        assert_eq!(e.verdict, PreVerdict::Escalate);
        assert_eq!(
            set.prefilter(&Update::insert("emp", tuple!["eve", "ghost", 1]), solver()),
            PreVerdict::Escalate
        );
    }

    #[test]
    fn multi_rule_unions_take_the_worst_class_per_template() {
        let c = parse_constraint(
            "panic :- emp(E,D,S) & not dept(D).\npanic :- emp(E,D,S) & salRange(D,L,H) & S < L.",
        )
        .unwrap();
        let set = PreTestSet::compile(&c);
        let t = set.template(&UpdateTemplate::insert("emp")).unwrap();
        assert_eq!(t.host_count(), 2);
        assert_eq!(t.residual_class(), ResidualClass::FilteredScan);
        let db = emp_db();
        // Violates the second rule only.
        let bad = run(&c, &db, &Update::insert("emp", tuple!["eve", "sales", 5]));
        assert_eq!(bad.verdict, PreVerdict::Violated);
        // Violates the first rule only.
        let bad = run(&c, &db, &Update::insert("emp", tuple!["eve", "ghost", 50]));
        assert_eq!(bad.verdict, PreVerdict::Violated);
        // Violates neither.
        let ok = run(&c, &db, &Update::insert("emp", tuple!["eve", "sales", 50]));
        assert_eq!(ok.verdict, PreVerdict::Holds);
    }
}
