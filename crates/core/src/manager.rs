//! The constraint manager and its checking pipeline.

use crate::remote::RemoteSource;
use crate::report::{CheckReport, LocalTestKind, Method, Outcome, UnknownCause};
use ccpi_arith::Solver;
use ccpi_containment::subsume::subsumes;
use ccpi_containment::thm51::PreparedUnion;
use ccpi_datalog::{DatalogError, Engine};
use ccpi_ir::class::{classify, ConstraintClass};
use ccpi_ir::{Constraint, Cq};
use ccpi_localtest::{compile_ra, extend_union, prepare_union, Cqc, IcqTest, LocalTestPlan};
use ccpi_parser::ParseError;
use ccpi_rewrite::independence::independent_of_update;
use ccpi_storage::{Database, Locality, Relation, StorageError, TupleSnapshot, Update};
use std::fmt;
use std::sync::Mutex;

/// Errors from manager operations.
#[derive(Debug)]
pub enum ManagerError {
    /// Constraint source failed to parse/validate.
    Parse(ParseError),
    /// The constraint program failed engine validation.
    Datalog(DatalogError),
    /// A storage-level problem (unknown relation, arity mismatch).
    Storage(StorageError),
    /// Duplicate constraint name.
    DuplicateName(String),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Parse(e) => write!(f, "{e}"),
            ManagerError::Datalog(e) => write!(f, "{e}"),
            ManagerError::Storage(e) => write!(f, "{e}"),
            ManagerError::DuplicateName(n) => write!(f, "constraint `{n}` already registered"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<ParseError> for ManagerError {
    fn from(e: ParseError) -> Self {
        ManagerError::Parse(e)
    }
}
impl From<DatalogError> for ManagerError {
    fn from(e: DatalogError) -> Self {
        ManagerError::Datalog(e)
    }
}
impl From<StorageError> for ManagerError {
    fn from(e: StorageError) -> Self {
        ManagerError::Storage(e)
    }
}

/// A registered constraint and its precompiled artifacts.
struct Registered {
    name: String,
    constraint: Constraint,
    class: ConstraintClass,
    engine: Engine,
    /// §5 form, when the constraint is a single CQC with one local subgoal.
    cqc: Option<Cqc>,
    /// Theorem 5.3 compiled plan (arithmetic-free CQCs).
    ra_plan: Option<LocalTestPlan>,
    /// Theorem 6.1 interval test (single-remote-variable ICQs).
    icq: Option<IcqTest>,
    /// §3: subsumed by the other registered constraints.
    subsumed: bool,
    /// Stage-3 cache: the Theorem 5.2 union (this constraint's reductions
    /// plus its siblings' over the shared local relation), prepared once
    /// per relation version and probed by every subsequent check. Interior
    /// mutability because checks take `&self`; under the parallel checker
    /// each scoped thread only ever touches its own constraint's slot.
    union_cache: Mutex<Option<UnionCache>>,
}

/// One prepared Theorem 5.2 union plus its validity token.
struct UnionCache {
    /// Pin of the local relation's tuple set at preparation time. Pointer
    /// equality against the live relation certifies the union still
    /// matches the data (any mutation is forced through copy-on-write
    /// while the pin is held, so stale hits are impossible).
    snapshot: TupleSnapshot,
    union: PreparedUnion,
}

/// The constraint manager: owns the database, registers constraints, and
/// walks the paper's escalation ladder on every update.
pub struct ConstraintManager {
    db: Database,
    solver: Solver,
    constraints: Vec<Registered>,
    /// `Some(v)` pins parallel checking on/off; `None` decides per call
    /// (more than one constraint, more than one core, no remote source).
    parallel_override: Option<bool>,
}

impl ConstraintManager {
    /// Creates a manager over a database (whose catalog carries the
    /// local/remote split). Uses the dense-order solver, the paper's
    /// setting; see [`ConstraintManager::with_solver`].
    pub fn new(db: Database) -> Self {
        ConstraintManager {
            db,
            solver: Solver::dense(),
            constraints: Vec::new(),
            parallel_override: None,
        }
    }

    /// Creates a manager with an explicit solver domain (e.g.
    /// [`ccpi_arith::Domain::Integer`] for integer-typed schemas).
    pub fn with_solver(db: Database, solver: Solver) -> Self {
        ConstraintManager {
            db,
            solver,
            constraints: Vec::new(),
            parallel_override: None,
        }
    }

    /// Pins parallel checking on or off; `None` restores the default
    /// (parallel when several constraints are registered and the host has
    /// more than one core). Checks through a remote source stay sequential
    /// regardless — their stage-4 hydration mutates shared state.
    pub fn set_parallel_checking(&mut self, enabled: Option<bool>) {
        self.parallel_override = enabled;
    }

    /// Read access to the database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Write access to the database (bulk loading).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Registers a constraint from source text.
    pub fn add_constraint(&mut self, name: &str, source: &str) -> Result<(), ManagerError> {
        let c = ccpi_parser::parse_constraint(source)?;
        self.add(name, c)
    }

    /// Registers an already-built constraint.
    pub fn add(&mut self, name: &str, constraint: Constraint) -> Result<(), ManagerError> {
        if self.constraints.iter().any(|r| r.name == name) {
            return Err(ManagerError::DuplicateName(name.to_string()));
        }
        let class = classify(constraint.program());
        let engine = Engine::new(constraint.program().clone())?;

        // §5 form?
        let cqc = if constraint.is_single_rule() {
            let rule = constraint.panic_rules().next().expect("validated");
            let cq = Cq::from_rule(rule);
            Cqc::new(cq, |p| self.db.locality(p)).ok()
        } else {
            None
        };
        let ra_plan = cqc.as_ref().and_then(|c| compile_ra(c).ok());
        let domain = self.solver.domain;
        let icq = cqc.as_ref().and_then(|c| IcqTest::new(c, domain).ok());

        self.constraints.push(Registered {
            name: name.to_string(),
            constraint,
            class,
            engine,
            cqc,
            ra_plan,
            icq,
            subsumed: false,
            union_cache: Mutex::new(None),
        });
        // A new constraint can contribute reductions to its siblings'
        // stage-3 unions; any prepared union is now incomplete.
        for r in &mut self.constraints {
            *r.union_cache.get_mut().expect("union cache lock poisoned") = None;
        }
        self.recompute_subsumption();
        Ok(())
    }

    /// §3: recompute which constraints are subsumed by the rest.
    fn recompute_subsumption(&mut self) {
        let all: Vec<Constraint> = self
            .constraints
            .iter()
            .map(|r| r.constraint.clone())
            .collect();
        for (i, reg) in self.constraints.iter_mut().enumerate() {
            let others: Vec<Constraint> = all
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            reg.subsumed = !others.is_empty()
                && subsumes(&others, &reg.constraint, self.solver)
                    .map(|s| s.answer.is_yes())
                    .unwrap_or(false);
        }
    }

    /// The registered constraint names, with their Fig. 2.1 classes.
    pub fn constraints(&self) -> Vec<(&str, ConstraintClass)> {
        self.constraints
            .iter()
            .map(|r| (r.name.as_str(), r.class))
            .collect()
    }

    /// Is the named constraint subsumed by the others (§3)?
    pub fn is_subsumed(&self, name: &str) -> Option<bool> {
        self.constraints
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.subsumed)
    }

    /// Checks one update against every constraint **without applying it**.
    /// Assumes all constraints hold on the current database (the paper's
    /// standing assumption, §2).
    pub fn check_update(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        self.check_update_inner(update, None)
    }

    /// Like [`check_update`](Self::check_update), but the manager's
    /// database is a **local view** (remote relations declared, empty) and
    /// stage 4 reads remote relations through `remote`.
    ///
    /// Each remote relation a full check needs is fetched at most once per
    /// call (and re-fetched fresh on the next call). If a fetch fails the
    /// affected constraints report
    /// [`Outcome::Unknown`]`(`[`UnknownCause::RemoteUnavailable`]`)` — the
    /// call itself still succeeds; unreachability is an answer, not an
    /// error. Transport counters measured during the call land in
    /// [`CheckReport::wire`].
    pub fn check_update_with_remote(
        &mut self,
        update: &Update,
        remote: &mut dyn RemoteSource,
    ) -> Result<CheckReport, ManagerError> {
        self.check_update_inner(update, Some(remote))
    }

    fn check_update_inner(
        &mut self,
        update: &Update,
        mut remote: Option<&mut dyn RemoteSource>,
    ) -> Result<CheckReport, ManagerError> {
        // Independent constraints can be checked in parallel: stages 1–3
        // are read-only, and stage 4 runs read-only against a shared
        // post-update snapshot. The remote path stays sequential — its
        // stage-4 hydration mutates the local view in place.
        if remote.is_none() && self.parallel_wanted() {
            return self.check_update_parallel(update);
        }
        let mut report = CheckReport::default();
        let stats_before = remote.as_deref().map(|r| r.wire_stats());
        // Remote relations hydrated so far this call: pred → fetch ok?
        let mut hydrated: std::collections::BTreeMap<String, bool> =
            std::collections::BTreeMap::new();
        // Post-update snapshot, built lazily on the first stage-4
        // escalation and shared by the rest (reset when hydration changes
        // the local view it was built from).
        let mut after: Option<Database> = None;

        let n = self.constraints.len();
        for i in 0..n {
            // Stages 1–3 (subsumption, independence, complete local test).
            if let Some(outcome) = self.try_cheap_stages(i, update) {
                report
                    .outcomes
                    .push((self.constraints[i].name.clone(), outcome));
                continue;
            }

            // Stage 4 — full check (reads remote data). With a remote
            // source, hydrate the remote relations the constraint mentions
            // first; a failed fetch degrades the outcome to Unknown.
            if let Some(src) = remote.as_deref_mut() {
                let preds: Vec<String> = self.constraints[i]
                    .constraint
                    .program()
                    .edb_predicates()
                    .into_iter()
                    .filter(|p| self.db.locality(p.as_str()) == Some(Locality::Remote))
                    .map(|p| p.as_str().to_string())
                    .collect();
                let mut reachable = true;
                for pred in preds {
                    let ok = match hydrated.get(&pred) {
                        Some(&ok) => ok,
                        None => {
                            let ok = self.hydrate_remote(src, &pred);
                            hydrated.insert(pred.clone(), ok);
                            // The shared snapshot no longer reflects the
                            // hydrated local view.
                            after = None;
                            ok
                        }
                    };
                    reachable &= ok;
                }
                if !reachable {
                    report.outcomes.push((
                        self.constraints[i].name.clone(),
                        Outcome::Unknown(UnknownCause::RemoteUnavailable),
                    ));
                    continue;
                }
            }
            let (outcome, tuples, bytes) = self.full_check(i, update, &mut after)?;
            report.remote_tuples_read += tuples;
            report.remote_bytes_read += bytes;
            report.full_checks += 1;
            report
                .outcomes
                .push((self.constraints[i].name.clone(), outcome));
        }

        if let Some(src) = remote.as_deref() {
            // Restore the local view: drop the hydrated remote contents.
            for (pred, ok) in &hydrated {
                if *ok {
                    if let Some(rel) = self.db.relation_mut(pred) {
                        rel.clear();
                    }
                }
            }
            if let Some(before) = stats_before {
                report.wire = src.wire_stats().delta_since(&before);
            }
        }
        Ok(report)
    }

    /// Stages 1–3 of the escalation ladder for constraint `i`, all
    /// read-only: §3 subsumption, §4 independence of the update, §5–6
    /// complete local tests. `None` means escalate to a full check.
    fn try_cheap_stages(&self, i: usize, update: &Update) -> Option<Outcome> {
        // Stage 1 — subsumption.
        if self.constraints[i].subsumed {
            return Some(Outcome::Holds(Method::Subsumed));
        }

        // Stage 2 — query independent of update.
        let others: Vec<Constraint> = self
            .constraints
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.constraint.clone())
            .collect();
        let independent = independent_of_update(
            &self.constraints[i].constraint,
            &others,
            update,
            self.solver,
        )
        .map(|a| a.is_yes())
        .unwrap_or(false);
        if independent {
            return Some(Outcome::Holds(Method::IndependentOfUpdate));
        }

        // Stage 3 — complete local test (insertions into the constraint's
        // local relation).
        if let Update::Insert { pred, tuple } = update {
            if let Some(kind) = self.try_local_test(i, pred.as_str(), tuple) {
                return Some(Outcome::Holds(Method::LocalTest(kind)));
            }
        }
        None
    }

    /// Should this check fan out across threads?
    fn parallel_wanted(&self) -> bool {
        match self.parallel_override {
            Some(v) => v && self.constraints.len() > 1,
            // Default: only when threads can actually overlap. On one core
            // the sequential path is strictly better — it applies/undoes
            // the update in place instead of snapshotting the database.
            None => {
                self.constraints.len() > 1
                    && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
            }
        }
    }

    /// Checks every constraint with stage 4 fanned out over scoped
    /// threads. Outcomes are merged back **in registration order**, so the
    /// report is byte-identical to the sequential path's.
    fn check_update_parallel(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        // One shared post-update snapshot; copy-on-write means only the
        // updated relation's tuple set is physically copied, and the other
        // relations keep sharing their index caches with `self.db`.
        let mut after = self.db.clone();
        after.apply(update)?;

        let n = self.constraints.len();
        let results: Vec<(Outcome, usize, usize, bool)> = std::thread::scope(|scope| {
            let after = &after;
            let this = &*self;
            let handles: Vec<_> = (0..n)
                .map(|i| scope.spawn(move || this.check_one_readonly(i, update, after)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("constraint checker thread panicked"))
                .collect()
        });

        let mut report = CheckReport::default();
        for (i, (outcome, tuples, bytes, full)) in results.into_iter().enumerate() {
            report.remote_tuples_read += tuples;
            report.remote_bytes_read += bytes;
            report.full_checks += usize::from(full);
            report
                .outcomes
                .push((self.constraints[i].name.clone(), outcome));
        }
        Ok(report)
    }

    /// One constraint's full ladder without mutating anything: stages 1–3
    /// against the pre-update database, stage 4 against the shared
    /// post-update snapshot. Returns the outcome, the remote tuples/bytes
    /// consulted, and whether stage 4 ran.
    fn check_one_readonly(
        &self,
        i: usize,
        update: &Update,
        after: &Database,
    ) -> (Outcome, usize, usize, bool) {
        if let Some(outcome) = self.try_cheap_stages(i, update) {
            return (outcome, 0, 0, false);
        }
        // Remote cost accounting matches `full_check`: counted against the
        // pre-update database.
        let (tuples, bytes) = self.remote_cost(i);
        let violated = self.constraints[i].engine.run(after).derives_panic();
        let outcome = if violated {
            Outcome::Violated
        } else {
            Outcome::Holds(Method::FullCheck)
        };
        (outcome, tuples, bytes, true)
    }

    /// Remote tuples/bytes a full check of constraint `i` consults: every
    /// remote relation the constraint mentions, in full.
    fn remote_cost(&self, i: usize) -> (usize, usize) {
        let mut tuples = 0usize;
        let mut bytes = 0usize;
        let program = self.constraints[i].constraint.program();
        for pred in program.edb_predicates() {
            if self.db.locality(pred.as_str()) == Some(Locality::Remote) {
                if let Some(rel) = self.db.relation(pred.as_str()) {
                    tuples += rel.len();
                    bytes += rel.iter().map(|t| t.transfer_bytes()).sum::<usize>();
                }
            }
        }
        (tuples, bytes)
    }

    /// Fetches remote relation `pred` through `src` and installs it into
    /// the database. Returns `false` (instead of erroring) when the fetch
    /// fails or the payload doesn't match the declared shape.
    fn hydrate_remote(&mut self, src: &mut dyn RemoteSource, pred: &str) -> bool {
        let Some(arity) = self.db.decl(pred).map(|d| d.arity) else {
            return false;
        };
        match src.fetch_relation(pred) {
            Ok(rows) if rows.iter().all(|t| t.arity() == arity) => {
                let rel = ccpi_storage::Relation::from_tuples(arity, rows);
                self.db.set_relation(pred, rel).is_ok()
            }
            _ => false,
        }
    }

    /// Checks, then applies the update (even when violations are found —
    /// callers who want to reject can consult the report first).
    pub fn process(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        let report = self.check_update(update)?;
        // An insert extends each affected Theorem 5.2 union by the new
        // tuple's reductions, so a cache that is current at apply time can
        // be maintained incrementally instead of rebuilt from scratch on
        // the next check. (Deletes shrink unions and simply invalidate:
        // the snapshot pin makes that automatic.) Currency must be judged
        // against the pre-apply tuple set.
        let current: Vec<bool> = match update {
            Update::Insert { pred, .. } => self.current_union_caches(pred.as_str()),
            Update::Delete { .. } => Vec::new(),
        };
        let changed = self.db.apply(update)?;
        if changed {
            if let Update::Insert { pred, tuple } = update {
                self.extend_union_caches(pred.as_str(), tuple, &current);
            }
        }
        Ok(report)
    }

    /// Which constraints' union caches exist and match `pred`'s current
    /// tuple set?
    fn current_union_caches(&self, pred: &str) -> Vec<bool> {
        let Some(rel) = self.db.relation(pred) else {
            return vec![false; self.constraints.len()];
        };
        self.constraints
            .iter()
            .map(|r| {
                r.union_cache
                    .lock()
                    .expect("union cache lock poisoned")
                    .as_ref()
                    .is_some_and(|c| c.snapshot.same_as(rel))
            })
            .collect()
    }

    /// After `tuple` was inserted into `pred`, appends its reductions to
    /// every union cache that was current pre-insert (`current`) and
    /// re-pins those caches to the post-insert tuple set.
    fn extend_union_caches(&mut self, pred: &str, tuple: &ccpi_storage::Tuple, current: &[bool]) {
        let Some(rel) = self.db.relation(pred) else {
            return;
        };
        // The new tuple's reduction under each registered CQC over `pred`.
        let reds: Vec<Option<Cq>> = self
            .constraints
            .iter()
            .map(|r| {
                r.cqc
                    .as_ref()
                    .filter(|c| c.local_pred().as_str() == pred)
                    .and_then(|c| c.red(tuple))
            })
            .collect();
        for i in 0..self.constraints.len() {
            if !current.get(i).copied().unwrap_or(false) {
                continue;
            }
            let slot = self.constraints[i]
                .union_cache
                .get_mut()
                .expect("union cache lock poisoned");
            let Some(cache) = slot.as_mut() else {
                continue;
            };
            // Own reduction first, then siblings' in registration order —
            // the same grouping a from-scratch build uses.
            let mut ok = true;
            if let Some(r) = &reds[i] {
                ok &= cache.union.add_member(r).is_ok();
            }
            for (j, red) in reds.iter().enumerate() {
                if j == i {
                    continue;
                }
                if let Some(r) = red {
                    ok &= cache.union.add_member(r).is_ok();
                }
            }
            if ok {
                cache.snapshot = rel.snapshot();
            } else {
                *slot = None;
            }
        }
    }

    fn try_local_test(
        &self,
        i: usize,
        pred: &str,
        tuple: &ccpi_storage::Tuple,
    ) -> Option<LocalTestKind> {
        let reg = &self.constraints[i];
        let cqc = reg.cqc.as_ref()?;
        if cqc.local_pred().as_str() != pred {
            return None;
        }
        let local = self.db.relation(pred)?;
        if tuple.arity() != local.arity() {
            return None;
        }
        // Multi-constraint extension (Theorem 5.2's "add to the union …
        // the reductions of the other constraints by all tuples in L"):
        // does any sibling CQC share this local relation?
        let has_siblings = self.constraints.iter().enumerate().any(|(j, o)| {
            j != i
                && o.cqc
                    .as_ref()
                    .is_some_and(|c| c.local_pred().as_str() == pred)
        });
        // With no sibling reductions, the compiled artifacts are complete:
        // a negative answer settles the local test. With siblings, a
        // negative compiled answer may still be rescued by the extended
        // union, so fall through to the containment test.
        if !has_siblings {
            if let Some(plan) = &reg.ra_plan {
                return plan
                    .test(tuple, local)
                    .holds()
                    .then_some(LocalTestKind::RaPlan);
            }
            if let Some(icq) = &reg.icq {
                return icq
                    .test(tuple, local)
                    .holds()
                    .then_some(LocalTestKind::Interval);
            }
        } else {
            if let Some(plan) = &reg.ra_plan {
                if plan.test(tuple, local).holds() {
                    return Some(LocalTestKind::RaPlan);
                }
            }
            if let Some(icq) = &reg.icq {
                if icq.test(tuple, local).holds() {
                    return Some(LocalTestKind::Interval);
                }
            }
        }
        // Example 5.4: no reduction — the insertion cannot violate C.
        let Some(red_t) = cqc.red(tuple) else {
            return Some(LocalTestKind::Containment);
        };
        // The containment test proper, through the prepared-union cache:
        // reductions of a fixed CQC all share one rectified shape, so the
        // union's disjuncts are tuple-independent and survive across
        // checks until the relation itself changes.
        let mut slot = reg.union_cache.lock().expect("union cache lock poisoned");
        if !slot.as_ref().is_some_and(|c| c.snapshot.same_as(local)) {
            *slot = self.build_union_cache(i, cqc, local, &red_t);
        }
        // A failed build (impossible for a validated CQC) is conservative:
        // escalate to a full check.
        let cache = slot.as_ref()?;
        match cache.union.contains(&red_t, self.solver) {
            Ok(true) => Some(LocalTestKind::Containment),
            _ => None,
        }
    }

    /// Prepares constraint `i`'s Theorem 5.2 union over `local`: its own
    /// reductions first, then each sibling's (registration order), exactly
    /// the union `complete_local_test_with` would assemble per check.
    fn build_union_cache(
        &self,
        i: usize,
        cqc: &Cqc,
        local: &Relation,
        red_t: &Cq,
    ) -> Option<UnionCache> {
        // Pin the tuple set *before* reading it, so a concurrent mutation
        // (none exist today — checks share `&self` — but cheap insurance)
        // could only invalidate, never falsely validate.
        let snapshot = local.snapshot();
        let mut union = prepare_union(cqc, red_t, local).ok()?;
        for (j, other) in self.constraints.iter().enumerate() {
            if j == i {
                continue;
            }
            let Some(ocqc) = other.cqc.as_ref() else {
                continue;
            };
            if ocqc.local_pred() != cqc.local_pred() {
                continue;
            }
            extend_union(&mut union, ocqc, local).ok()?;
        }
        Some(UnionCache { snapshot, union })
    }

    /// Full evaluation of the constraint on the post-update database.
    ///
    /// Evaluates against a copy-on-write snapshot rather than applying and
    /// undoing in place: only the updated relation's tuple set is copied,
    /// the others keep sharing storage and index caches with `self.db`,
    /// and — crucially — the stage-3 union caches pinned to `self.db`'s
    /// relations stay valid across the check. The snapshot is built into
    /// `after` on first use so later escalations in the same check reuse it.
    fn full_check(
        &mut self,
        i: usize,
        update: &Update,
        after: &mut Option<Database>,
    ) -> Result<(Outcome, usize, usize), ManagerError> {
        // Remote cost: every remote relation the constraint mentions must
        // be consulted.
        let (tuples, bytes) = self.remote_cost(i);
        let after = match after {
            Some(db) => db,
            None => {
                let mut a = self.db.clone();
                a.apply(update)?;
                after.insert(a)
            }
        };
        let violated = self.constraints[i].engine.run(after).derives_panic();
        Ok((
            if violated {
                Outcome::Violated
            } else {
                Outcome::Holds(Method::FullCheck)
            },
            tuples,
            bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_storage::tuple;

    fn intervals_mgr() -> ConstraintManager {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        db.insert("l", tuple![5, 10]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        mgr
    }

    #[test]
    fn local_test_certifies_example_5_3_with_zero_remote_reads() {
        let mut mgr = intervals_mgr();
        let report = mgr
            .check_update(&Update::insert("l", tuple![4, 8]))
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::LocalTest(LocalTestKind::Interval)))
        ));
        assert_eq!(report.remote_tuples_read, 0);
        assert_eq!(report.full_checks, 0);
    }

    #[test]
    fn uncovered_insert_falls_through_to_full_check() {
        let mut mgr = intervals_mgr();
        // Remote has a point at 20; inserting (15,25) forbids it.
        mgr.database_mut().insert("r", tuple![20]).unwrap();
        let report = mgr
            .check_update(&Update::insert("l", tuple![15, 25]))
            .unwrap();
        assert_eq!(report.outcome("intervals"), Some(Outcome::Violated));
        assert!(report.remote_tuples_read > 0);
        // The database is unchanged by check_update.
        assert_eq!(mgr.database().relation("l").unwrap().len(), 2);
    }

    #[test]
    fn uncovered_but_unviolated_insert_passes_full_check() {
        let mut mgr = intervals_mgr();
        let report = mgr
            .check_update(&Update::insert("l", tuple![15, 25]))
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
        assert_eq!(report.full_checks, 1);
    }

    #[test]
    fn independence_stage_fires_for_unrelated_updates() {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("ri", "panic :- emp(E,D,S) & not dept(D).")
            .unwrap();
        // Inserting a department can only shrink the violation set.
        let report = mgr
            .check_update(&Update::insert("dept", tuple!["toy"]))
            .unwrap();
        assert!(matches!(
            report.outcome("ri"),
            Some(Outcome::Holds(Method::IndependentOfUpdate))
        ));
    }

    #[test]
    fn subsumption_stage_skips_redundant_constraints() {
        let mut db = Database::new();
        db.declare("emp", 2, Locality::Local).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("loose", "panic :- emp(E,D1) & emp(E,D2).")
            .unwrap();
        mgr.add_constraint("tight", "panic :- emp(E,sales) & emp(E,accounting).")
            .unwrap();
        assert_eq!(mgr.is_subsumed("tight"), Some(true));
        assert_eq!(mgr.is_subsumed("loose"), Some(false));
        let report = mgr
            .check_update(&Update::insert("emp", tuple!["x", "sales"]))
            .unwrap();
        assert!(matches!(
            report.outcome("tight"),
            Some(Outcome::Holds(Method::Subsumed))
        ));
    }

    #[test]
    fn ra_plan_stage_fires_for_arithmetic_free_cqcs() {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 2, Locality::Remote).unwrap();
        db.insert("l", tuple![1, 2]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("af", "panic :- l(X,Y) & r(X,Y).")
            .unwrap();
        // Duplicate insert: covered by the existing row via the RA plan.
        let report = mgr
            .check_update(&Update::insert("l", tuple![1, 2]))
            .unwrap();
        assert!(matches!(
            report.outcome("af"),
            Some(Outcome::Holds(Method::LocalTest(LocalTestKind::RaPlan)))
        ));
    }

    #[test]
    fn process_applies_the_update() {
        let mut mgr = intervals_mgr();
        mgr.process(&Update::insert("l", tuple![4, 8])).unwrap();
        assert_eq!(mgr.database().relation("l").unwrap().len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut mgr = intervals_mgr();
        let err = mgr
            .add_constraint("intervals", "panic :- r(Z).")
            .unwrap_err();
        assert!(matches!(err, ManagerError::DuplicateName(_)));
    }

    #[test]
    fn multi_constraint_reductions_extend_the_union() {
        // Two interval constraints over the same local relation; the
        // second's reductions help cover the first's insert.
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        // A non-ICQ-compilable variant to force the containment path:
        // two remote subgoals sharing Z is still handled by thm52.
        mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        // "b" forbids r-points in [5,10] whenever ANY l-row exists with
        // first component <= 5 — gives reductions covering [5,10].
        mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
            .unwrap();
        let report = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        // Constraint "a" alone can't cover [5,8] from [3,6], but b's
        // reduction [5,10] (valid since l has (3,6) with 3 <= 5) does.
        let a = report.outcome("a").unwrap();
        assert!(a.holds() && a.method() != Some(Method::FullCheck), "{a:?}");
    }

    /// Two interval constraints over one local relation: the compiled
    /// shortcuts can't certify across constraints, so these go through the
    /// prepared-union containment path (and therefore the cache).
    fn siblings_mgr(rows: &[(i64, i64)]) -> ConstraintManager {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        for &(a, b) in rows {
            db.insert("l", tuple![a, b]).unwrap();
        }
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
            .unwrap();
        mgr
    }

    /// `process` maintains the prepared union incrementally on inserts:
    /// a tuple admitted after the cache was built must contribute its
    /// reductions (own *and* sibling) to later local tests.
    #[test]
    fn process_insert_extends_the_union_cache() {
        let mut mgr = siblings_mgr(&[]);
        // Build `a`'s cache over the empty relation: nothing covers [5,8],
        // so this escalates (and holds only because `r` is empty).
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
        // Admit (3,6). `a`'s union gains RED_a((3,6)) = [3,6] and — the
        // multi-constraint extension — RED_b((3,6)) = [5,10].
        mgr.process(&Update::insert("l", tuple![3, 6])).unwrap();
        // [5,8] is covered only through sibling `b`'s reduction.
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::LocalTest(
                LocalTestKind::Containment
            )))
        ));
    }

    /// Deleting the tuple whose reductions covered an insert must
    /// invalidate the prepared union: a stale cache would certify an
    /// insert that is no longer safe.
    #[test]
    fn process_delete_invalidates_the_union_cache() {
        let mut mgr = siblings_mgr(&[(3, 6)]);
        // Warm `a`'s cache: [5,8] covered via sibling `b`'s [5,10].
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::LocalTest(
                LocalTestKind::Containment
            )))
        ));
        // Remove (3,6): `b`'s reduction disappears with it.
        mgr.process(&Update::delete("l", tuple![3, 6])).unwrap();
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        // No longer locally certifiable: must escalate to stage 4.
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
    }

    /// Differential check: a long-lived manager (whose union caches are
    /// built once and maintained across updates) reports exactly what a
    /// from-scratch manager reports at every step of a mixed stream.
    #[test]
    fn cached_manager_matches_fresh_manager_across_a_stream() {
        fn base_db() -> Database {
            let mut db = Database::new();
            db.declare("l", 2, Locality::Local).unwrap();
            db.declare("r", 1, Locality::Remote).unwrap();
            db
        }
        fn managers(db: &Database) -> ConstraintManager {
            let mut mgr = ConstraintManager::new(db.clone());
            mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
                .unwrap();
            mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
                .unwrap();
            mgr
        }
        let mut live = managers(&base_db());
        // A deterministic mixed stream of interval inserts and deletes.
        let mut seed = 0x2545f49_u64;
        let mut next = move |m: u64| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _ in 0..40 {
            let (a, w) = (next(12) as i64, next(8) as i64);
            let t = tuple![a, a + w];
            let update = if next(4) == 0 {
                Update::delete("l", t)
            } else {
                Update::insert("l", t)
            };
            // A fresh manager over the same database has no caches at all.
            let mut fresh = managers(live.database());
            let want = fresh.check_update(&update).unwrap();
            let got = live.process(&update).unwrap();
            assert_eq!(got, want, "diverged on {update:?}");
        }
    }

    #[test]
    fn remote_source_hydrates_stage_four() {
        use crate::distributed::SiteSplit;
        use crate::remote::{RemoteError, RemoteSource};
        use crate::report::WireStats;

        /// Serves from a captured database and counts fetches.
        struct DbSource {
            remote: Database,
            fetches: u64,
        }
        impl RemoteSource for DbSource {
            fn fetch_relation(
                &mut self,
                pred: &str,
            ) -> Result<Vec<ccpi_storage::Tuple>, RemoteError> {
                self.fetches += 1;
                self.remote
                    .relation(pred)
                    .map(|r| r.iter().cloned().collect())
                    .ok_or_else(|| RemoteError::Protocol(format!("unknown relation {pred}")))
            }
            fn wire_stats(&self) -> WireStats {
                WireStats {
                    requests: self.fetches,
                    round_trips: self.fetches,
                    ..WireStats::default()
                }
            }
        }

        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        db.insert("l", tuple![5, 10]).unwrap();
        db.insert("r", tuple![20]).unwrap();
        let split = SiteSplit::of(&db);
        let mut src = DbSource {
            remote: split.remote,
            fetches: 0,
        };
        let mut mgr = ConstraintManager::new(SiteSplit::local_view(&db));
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();

        // Covered insert: settled by stage 3, zero fetches.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![4, 8]), &mut src)
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::LocalTest(_)))
        ));
        assert_eq!(src.fetches, 0);
        assert!(report.wire.is_zero());

        // Violating insert: needs the remote point r(20).
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![15, 25]), &mut src)
            .unwrap();
        assert_eq!(report.outcome("intervals"), Some(Outcome::Violated));
        assert_eq!(src.fetches, 1);
        assert_eq!(report.wire.requests, 1);
        assert!(report.remote_tuples_read > 0);
        // The local view is restored: remote relations empty again.
        assert!(mgr.database().relation("r").unwrap().is_empty());

        // Safe-but-uncovered insert: full check passes via the wire.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![21, 30]), &mut src)
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
    }

    #[test]
    fn unreachable_remote_degrades_to_unknown() {
        use crate::remote::UnreachableRemote;
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        let mut dead = UnreachableRemote;

        // Stage 3 still certifies covered inserts without the remote.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![3, 6]), &mut dead)
            .unwrap();
        assert!(report.outcome("intervals").unwrap().holds());

        // An uncovered insert cannot be settled: Unknown, not an error.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![15, 25]), &mut dead)
            .unwrap();
        assert_eq!(
            report.outcome("intervals"),
            Some(Outcome::Unknown(UnknownCause::RemoteUnavailable))
        );
        assert_eq!(report.unknowns(), vec!["intervals"]);
        assert!(report.violations().is_empty());
        assert_eq!(report.full_checks, 0);
    }

    /// A three-constraint employee schema with enough data that every
    /// ladder stage is reachable.
    fn emp_mgr() -> ConstraintManager {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db.declare("salRange", 3, Locality::Remote).unwrap();
        for (e, d, s) in [("ann", "sales", 80i64), ("bob", "toys", 95)] {
            db.insert("emp", tuple![e, d, s]).unwrap();
        }
        for d in ["sales", "toys"] {
            db.insert("dept", tuple![d]).unwrap();
            db.insert("salRange", tuple![d, 10, 200]).unwrap();
        }
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("referential", "panic :- emp(E,D,S) & not dept(D).")
            .unwrap();
        mgr.add_constraint(
            "pay-floor",
            "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
        )
        .unwrap();
        mgr.add_constraint(
            "pay-ceiling",
            "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
        )
        .unwrap();
        mgr
    }

    #[test]
    fn parallel_checking_matches_sequential_reports_exactly() {
        let updates = [
            Update::insert("emp", tuple!["carol", "sales", 50]), // holds
            Update::insert("emp", tuple!["dave", "ghost", 50]),  // referential violation
            Update::insert("emp", tuple!["erin", "toys", 5]),    // pay-floor violation
            Update::insert("emp", tuple!["erin", "toys", 500]),  // pay-ceiling violation
            Update::insert("dept", tuple!["garden"]),            // independent
            Update::delete("emp", tuple!["ann", "sales", 80]),   // deletion
        ];
        let mut seq = emp_mgr();
        seq.set_parallel_checking(Some(false));
        let mut par = emp_mgr();
        par.set_parallel_checking(Some(true));
        for u in &updates {
            let a = seq.check_update(u).unwrap();
            let b = par.check_update(u).unwrap();
            assert_eq!(a, b, "reports diverge on {u:?}");
        }
    }

    #[test]
    fn parallel_checking_leaves_the_database_untouched() {
        let mut mgr = emp_mgr();
        mgr.set_parallel_checking(Some(true));
        let before = mgr.database().total_tuples();
        let report = mgr
            .check_update(&Update::insert("emp", tuple!["dave", "ghost", 50]))
            .unwrap();
        assert_eq!(report.violations(), vec!["referential"]);
        assert_eq!(report.full_checks, 3);
        assert!(report.remote_tuples_read > 0);
        assert_eq!(mgr.database().total_tuples(), before);
    }

    #[test]
    fn violation_detection_is_sound_end_to_end() {
        // Randomized pipeline soundness: whatever the method, Holds must
        // agree with ground truth on the post-update database.
        use ccpi_datalog::constraint_violated;
        let mut mgr = intervals_mgr();
        mgr.database_mut().insert("r", tuple![7]).unwrap();
        // r(7) is inside the forbidden union [3,10]! The standing
        // assumption (constraints hold now) is violated; fix the data
        // first by removing the point.
        mgr.database_mut().delete("r", &tuple![7]).unwrap();
        mgr.database_mut().insert("r", tuple![20]).unwrap();

        let cases = [(4i64, 8i64), (15, 25), (18, 19), (20, 20), (21, 30)];
        for (a, b) in cases {
            let upd = Update::insert("l", tuple![a, b]);
            let report = mgr.check_update(&upd).unwrap();
            let outcome = report.outcome("intervals").unwrap();
            let mut after = mgr.database().clone();
            after.apply(&upd).unwrap();
            let c =
                ccpi_parser::parse_constraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").unwrap();
            let truth = constraint_violated(&c, &after).unwrap();
            assert_eq!(!outcome.holds(), truth, "insert ({a},{b})");
        }
    }
}
