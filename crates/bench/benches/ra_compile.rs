//! E4 — Theorem 5.3: plan construction is exponential in the query but
//! independent of the data; plan evaluation scales with |L| only.

use ccpi_bench::duplicated_remote_cqc;
use ccpi_localtest::compile_ra;
use ccpi_storage::{tuple, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("ra_compile/query_size");
    g.sample_size(10);
    for k in [1usize, 2, 3, 4, 5, 6] {
        let cqc = duplicated_remote_cqc(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(compile_ra(&cqc).unwrap().mapping_count()));
        });
    }
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ra_compile/eval_vs_L");
    g.sample_size(10);
    let cqc = duplicated_remote_cqc(3);
    let plan = compile_ra(&cqc).unwrap();
    for n in [100i64, 1_000, 10_000] {
        let local = Relation::from_tuples(2, (0..n).map(|k| tuple![k, k + 1]));
        let t = tuple![n / 2, n / 2 + 1];
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.test(&t, &local)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_eval);
criterion_main!(benches);
