//! **§6 / Theorem 6.1** — independently constrained queries and the
//! recursive-datalog complete local test.
//!
//! > Call a variable in a CQC *remote* if it does not appear in a local
//! > subgoal. A CQC `C` is independently constrained (an ICQ) if every
//! > comparison, except an equality comparison, involves at most one
//! > remote variable.
//!
//! For the forbidden-intervals family (one remote variable `Z`; remote
//! subgoals mention only `Z` and constants) this module provides **two**
//! complete local tests:
//!
//! * [`IcqTest`] — the direct runtime: extract from each local tuple the
//!   interval(s) forbidden to `Z`, accumulate them in an
//!   [`IntervalSet`], and answer coverage.
//!   Handles open/closed/unbounded endpoints, `=` (degenerate interval)
//!   and `<>` (interval splitting — the Theorem 6.1 proof's
//!   "get rid of `X ≠ Y` by splitting"), in dense or integer domains.
//! * [`DatalogIntervalTest`] — the paper's own artifact: a generated
//!   **recursive datalog program with arithmetic** in the exact shape of
//!   Fig. 6.1 (basis rules building forbidden intervals from `L`, the
//!   recursive merge rule, and the `ok` coverage rule), evaluated by
//!   `ccpi-datalog`. The generator specializes to the CQC's endpoint
//!   flavors, handles multiple lower/upper bounds ("we may need a
//!   different rule for every such order"), and the four boundedness
//!   shapes ("intervals may be open to infinity or minus infinity").
//!
//! The paper also proves a *negative* result here: "this constraint C does
//! not have a complete local test that is an expression of relational
//! algebra", because a fixed RA expression looks at a bounded number `k`
//! of tuples, and `k + 1` tuples may be needed to cover an inserted
//! interval. The `coverage_needs_unboundedly_many_tuples` test (and the
//! `intervals` bench) materializes that argument.

use crate::cqc::Cqc;
use crate::intervals::{Bound, Interval, IntervalSet};
use crate::thm52::LocalTestResult;
use ccpi_arith::Domain;
use ccpi_datalog::Engine;
use ccpi_ir::{Atom, CompOp, Comparison, Literal, Program, Rule, Sym, Term, Value, Var};
use ccpi_storage::{Database, Locality, Relation, Tuple};
use std::fmt;

/// Where a bound value comes from, for a given local tuple `s`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoundSrc {
    /// Component `i` of the local tuple (first occurrence of a local var).
    Col(usize),
    /// A constant.
    Const(Value),
}

impl BoundSrc {
    fn value(&self, s: &Tuple) -> Value {
        match self {
            BoundSrc::Col(i) => s[*i].clone(),
            BoundSrc::Const(c) => c.clone(),
        }
    }

    fn term(&self, l_args: &[Term]) -> Term {
        match self {
            BoundSrc::Col(i) => l_args[*i].clone(),
            BoundSrc::Const(c) => Term::Const(c.clone()),
        }
    }
}

/// Why a CQC is outside the compiled ICQ family.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IcqError {
    /// Not an ICQ at all (a comparison links two remote variables).
    NotIndependentlyConstrained,
    /// The compiled tests need exactly one remote variable.
    NotSingleRemoteVar(usize),
    /// A remote subgoal mentions a local variable or a second variable.
    UnsupportedRemoteArgs(Sym),
    /// The datalog generator requires uniform strictness per side.
    MixedStrictness,
    /// The datalog generator does not take `<>` on the remote variable
    /// (use [`IcqTest`], which splits intervals).
    HasDisequality,
}

impl fmt::Display for IcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcqError::NotIndependentlyConstrained => {
                write!(f, "a comparison links two remote variables (not an ICQ)")
            }
            IcqError::NotSingleRemoteVar(n) => {
                write!(
                    f,
                    "compiled ICQ tests require exactly one remote variable, found {n}"
                )
            }
            IcqError::UnsupportedRemoteArgs(p) => write!(
                f,
                "remote subgoal `{p}` mentions local variables; falling back to Theorem 5.2"
            ),
            IcqError::MixedStrictness => write!(
                f,
                "datalog generation requires uniform strictness per bound side"
            ),
            IcqError::HasDisequality => {
                write!(
                    f,
                    "datalog generation does not support <> on the remote variable"
                )
            }
        }
    }
}

impl std::error::Error for IcqError {}

/// Is the CQC independently constrained (the §6 definition)?
pub fn is_icq(cqc: &Cqc) -> bool {
    let remote = cqc.remote_vars();
    cqc.cq().comparisons.iter().all(|c| {
        if c.op == CompOp::Eq {
            return true;
        }
        let remotes_in_cmp = c.vars().filter(|v| remote.contains(v)).count();
        // `Z op Z` involves one remote variable (twice) — still an ICQ.
        remotes_in_cmp <= 1 || (c.lhs == c.rhs)
    })
}

/// The analyzed forbidden-intervals test for a single-remote-variable ICQ.
#[derive(Clone, Debug)]
pub struct IcqTest {
    cqc: Cqc,
    /// The remote variable `Z`.
    z: Var,
    /// Lower bounds `src (≤|<) Z` as (source, strict).
    lower: Vec<(BoundSrc, bool)>,
    /// Upper bounds `Z (≤|<) src`.
    upper: Vec<(BoundSrc, bool)>,
    /// `Z = src` pins.
    eqs: Vec<BoundSrc>,
    /// `Z <> src` punctures.
    nes: Vec<BoundSrc>,
    /// Comparisons not involving `Z` (filters on the local tuple).
    filters: Vec<Comparison>,
    /// `true` when a `Z op Z` tautology-violation makes every reduction's
    /// region empty (e.g. `Z < Z`).
    always_empty: bool,
    /// Interpretation domain.
    pub domain: Domain,
}

impl IcqTest {
    /// Analyzes a CQC into the forbidden-intervals form.
    pub fn new(cqc: &Cqc, domain: Domain) -> Result<Self, IcqError> {
        if !is_icq(cqc) {
            return Err(IcqError::NotIndependentlyConstrained);
        }
        let remote = cqc.remote_vars();
        if remote.len() != 1 {
            return Err(IcqError::NotSingleRemoteVar(remote.len()));
        }
        let z = remote[0].clone();

        // Remote subgoals may mention only Z and constants.
        for r in cqc.remotes() {
            for t in &r.args {
                match t {
                    Term::Const(_) => {}
                    Term::Var(v) if *v == z => {}
                    Term::Var(_) => return Err(IcqError::UnsupportedRemoteArgs(r.pred.clone())),
                }
            }
        }

        // Map each local variable to its first position in `l`.
        let l_args = &cqc.local_atom().args;
        let pos_of =
            |v: &Var| -> Option<usize> { l_args.iter().position(|t| t.as_var() == Some(v)) };
        let src_of = |t: &Term| -> Option<BoundSrc> {
            match t {
                Term::Const(c) => Some(BoundSrc::Const(c.clone())),
                Term::Var(v) if *v == z => None,
                Term::Var(v) => pos_of(v).map(BoundSrc::Col),
            }
        };

        let mut out = IcqTest {
            cqc: cqc.clone(),
            z: z.clone(),
            lower: vec![],
            upper: vec![],
            eqs: vec![],
            nes: vec![],
            filters: vec![],
            always_empty: false,
            domain,
        };

        for c in &cqc.cq().comparisons {
            let z_left = c.lhs == Term::Var(z.clone());
            let z_right = c.rhs == Term::Var(z.clone());
            match (z_left, z_right) {
                (true, true) => match c.op {
                    // Z op Z.
                    CompOp::Lt | CompOp::Gt | CompOp::Ne => out.always_empty = true,
                    CompOp::Le | CompOp::Ge | CompOp::Eq => {}
                },
                (false, false) => out.filters.push(c.clone()),
                _ => {
                    // Normalize to `Z op other`.
                    let (op, other) = if z_left {
                        (c.op, &c.rhs)
                    } else {
                        (c.op.flip(), &c.lhs)
                    };
                    let src =
                        src_of(other).expect("other side is local or constant by ICQ analysis");
                    match op {
                        CompOp::Lt => out.upper.push((src, true)),
                        CompOp::Le => out.upper.push((src, false)),
                        CompOp::Gt => out.lower.push((src, true)),
                        CompOp::Ge => out.lower.push((src, false)),
                        CompOp::Eq => out.eqs.push(src),
                        CompOp::Ne => out.nes.push(src),
                    }
                }
            }
        }
        Ok(out)
    }

    /// The underlying CQC.
    pub fn cqc(&self) -> &Cqc {
        &self.cqc
    }

    /// The remote variable.
    pub fn remote_var(&self) -> &Var {
        &self.z
    }

    /// The forbidden region contributed by local tuple `s`, as disjoint
    /// intervals. `None` when `s` does not match `l` or fails a filter —
    /// it contributes nothing. An empty vector means the region is empty.
    pub fn region_for(&self, s: &Tuple) -> Option<Vec<Interval>> {
        // Pattern-match the local atom (Example 5.4 semantics).
        let ground = Atom {
            pred: self.cqc.local_pred().clone(),
            args: s.iter().cloned().map(Term::Const).collect(),
        };
        let mut sub = ccpi_ir::Subst::new();
        if !ccpi_ir::subst::match_atom(&mut sub, self.cqc.local_atom(), &ground) {
            return None;
        }
        // Filters.
        for f in &self.filters {
            match sub.apply_cmp(f).eval_ground() {
                Some(true) => {}
                _ => return None,
            }
        }
        if self.always_empty {
            return Some(vec![]);
        }

        // Resolve bounds.
        let mut lo = Bound::NegInf;
        for (src, strict) in &self.lower {
            let v = src.value(s);
            let cand = if *strict {
                Bound::Excl(v)
            } else {
                Bound::Incl(v)
            };
            if cand.lo_cmp(&lo) == std::cmp::Ordering::Greater {
                lo = cand;
            }
        }
        let mut hi = Bound::PosInf;
        for (src, strict) in &self.upper {
            let v = src.value(s);
            let cand = if *strict {
                Bound::Excl(v)
            } else {
                Bound::Incl(v)
            };
            if cand.hi_cmp(&hi) == std::cmp::Ordering::Less {
                hi = cand;
            }
        }
        for src in &self.eqs {
            let v = src.value(s);
            let cand_lo = Bound::Incl(v.clone());
            if cand_lo.lo_cmp(&lo) == std::cmp::Ordering::Greater {
                lo = cand_lo;
            }
            let cand_hi = Bound::Incl(v);
            if cand_hi.hi_cmp(&hi) == std::cmp::Ordering::Less {
                hi = cand_hi;
            }
        }
        let base = Interval::new(lo, hi);
        if base.is_empty(self.domain) {
            return Some(vec![]);
        }

        // Puncture with the <> points.
        let mut pieces = vec![base];
        for src in &self.nes {
            let v = src.value(s);
            let mut next = Vec::with_capacity(pieces.len() + 1);
            for iv in pieces {
                if iv.contains(&v) {
                    let left = Interval::new(iv.lo.clone(), Bound::Excl(v.clone()));
                    let right = Interval::new(Bound::Excl(v.clone()), iv.hi.clone());
                    if !left.is_empty(self.domain) {
                        next.push(left);
                    }
                    if !right.is_empty(self.domain) {
                        next.push(right);
                    }
                } else {
                    next.push(iv);
                }
            }
            pieces = next;
        }
        Some(pieces)
    }

    /// The union of forbidden regions over a whole local relation.
    pub fn forbidden(&self, local: &Relation) -> IntervalSet {
        let mut set = IntervalSet::new(self.domain);
        for s in local.iter() {
            if let Some(region) = self.region_for(s) {
                for iv in region {
                    set.insert(iv);
                }
            }
        }
        set
    }

    /// The complete local test: inserting `t` is safe iff `t`'s region is
    /// already covered by the union of the existing regions.
    pub fn test(&self, t: &Tuple, local: &Relation) -> LocalTestResult {
        let Some(region) = self.region_for(t) else {
            return LocalTestResult::Holds;
        };
        let cover = self.forbidden(local);
        if region.iter().all(|iv| cover.covers(iv)) {
            LocalTestResult::Holds
        } else {
            LocalTestResult::Unknown
        }
    }
}

/// The generated recursive-datalog test of Fig. 6.1.
///
/// The program uses three IDB predicates:
/// `interval/2 | lowend/1 | highend/1 | nonempty/0` (depending on which
/// sides are bounded), plus the goal `ok` and the EDB `probe` carrying the
/// inserted tuple's interval. See the module docs.
#[derive(Clone, Debug)]
pub struct DatalogIntervalTest {
    icq: IcqTest,
    program: Program,
    lo_strict: Option<bool>,
    hi_strict: Option<bool>,
}

/// Predicate names used in generated programs.
const INTERVAL: &str = "interval";
const LOWEND: &str = "lowend";
const HIGHEND: &str = "highend";
const NONEMPTY: &str = "nonempty";
const PROBE: &str = "probe";
const OK: &str = "ok";

impl DatalogIntervalTest {
    /// Generates the datalog test for an analyzed ICQ. Requires uniform
    /// strictness per side and no `<>` on the remote variable.
    pub fn new(icq: IcqTest) -> Result<Self, IcqError> {
        if !icq.nes.is_empty() {
            return Err(IcqError::HasDisequality);
        }
        // Fold Z = src into a nonstrict bound on both sides.
        let mut lower = icq.lower.clone();
        let mut upper = icq.upper.clone();
        for src in &icq.eqs {
            lower.push((src.clone(), false));
            upper.push((src.clone(), false));
        }
        let lo_strict = uniform_strictness(&lower)?;
        let hi_strict = uniform_strictness(&upper)?;

        let program = generate_program(&icq, &lower, &upper, lo_strict, hi_strict);
        Ok(DatalogIntervalTest {
            icq,
            program,
            lo_strict,
            hi_strict,
        })
    }

    /// The generated program (Fig. 6.1 for the forbidden-intervals CQC).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the complete local test by evaluating the generated program.
    pub fn test(&self, t: &Tuple, local: &Relation) -> LocalTestResult {
        let Some(region) = self.icq.region_for(t) else {
            return LocalTestResult::Holds;
        };
        // With no <>, the region is empty or one interval.
        let Some(iv) = region.first() else {
            return LocalTestResult::Holds;
        };

        let mut db = Database::new();
        let l_name = self.icq.cqc.local_pred().as_str().to_string();
        db.declare(&l_name, local.arity(), Locality::Local)
            .expect("fresh database");
        for s in local.iter() {
            db.insert(&l_name, s.clone()).expect("declared");
        }
        // The probe carries the inserted interval's endpoints (flavors are
        // compile-time constants, so values suffice).
        let mut probe_vals: Vec<Value> = Vec::new();
        if self.lo_strict.is_some() {
            match &iv.lo {
                Bound::Incl(v) | Bound::Excl(v) => probe_vals.push(v.clone()),
                _ => unreachable!("bounded side produces a value"),
            }
        }
        if self.hi_strict.is_some() {
            match &iv.hi {
                Bound::Incl(v) | Bound::Excl(v) => probe_vals.push(v.clone()),
                _ => unreachable!("bounded side produces a value"),
            }
        }
        db.declare(PROBE, probe_vals.len(), Locality::Local)
            .expect("fresh database");
        db.insert(PROBE, Tuple::from(probe_vals)).expect("declared");

        let engine = Engine::new(self.program.clone()).expect("generated program is valid");
        let out = engine.run(&db);
        if out.relation(OK).is_some_and(|r| !r.is_empty()) {
            LocalTestResult::Holds
        } else {
            LocalTestResult::Unknown
        }
    }
}

fn uniform_strictness(bounds: &[(BoundSrc, bool)]) -> Result<Option<bool>, IcqError> {
    let mut strict: Option<bool> = None;
    for (_, s) in bounds {
        match strict {
            None => strict = Some(*s),
            Some(prev) if prev != *s => return Err(IcqError::MixedStrictness),
            _ => {}
        }
    }
    Ok(strict)
}

/// Emits the Fig. 6.1-style program.
fn generate_program(
    icq: &IcqTest,
    lower: &[(BoundSrc, bool)],
    upper: &[(BoundSrc, bool)],
    lo_strict: Option<bool>,
    hi_strict: Option<bool>,
) -> Program {
    let l_atom = icq.cqc.local_atom().clone();
    let mut rules: Vec<Rule> = Vec::new();

    // Basis rules: one per choice of binding lower and upper source
    // ("we may need a different rule for every such order").
    let lo_choices: Vec<Option<usize>> = if lower.is_empty() {
        vec![None]
    } else {
        (0..lower.len()).map(Some).collect()
    };
    let hi_choices: Vec<Option<usize>> = if upper.is_empty() {
        vec![None]
    } else {
        (0..upper.len()).map(Some).collect()
    };

    for &lo_pick in &lo_choices {
        for &hi_pick in &hi_choices {
            let mut body: Vec<Literal> = vec![Literal::Pos(l_atom.clone())];
            body.extend(icq.filters.iter().cloned().map(Literal::Cmp));
            let mut head_args: Vec<Term> = Vec::new();
            if let Some(i) = lo_pick {
                let chosen = lower[i].0.term(&l_atom.args);
                head_args.push(chosen.clone());
                // The chosen lower bound is the maximum.
                for (j, (src, _)) in lower.iter().enumerate() {
                    if j != i {
                        body.push(Literal::Cmp(Comparison::new(
                            src.term(&l_atom.args),
                            CompOp::Le,
                            chosen.clone(),
                        )));
                    }
                }
            }
            if let Some(i) = hi_pick {
                let chosen = upper[i].0.term(&l_atom.args);
                head_args.push(chosen.clone());
                // The chosen upper bound is the minimum.
                for (j, (src, _)) in upper.iter().enumerate() {
                    if j != i {
                        body.push(Literal::Cmp(Comparison::new(
                            src.term(&l_atom.args),
                            CompOp::Ge,
                            chosen.clone(),
                        )));
                    }
                }
            }
            // Nonempty-interval guard for bounded intervals: lo ≤ hi
            // (or lo < hi for open ends over a dense domain).
            if let (Some(li), Some(hi_i)) = (lo_pick, hi_pick) {
                let lo_t = lower[li].0.term(&l_atom.args);
                let hi_t = upper[hi_i].0.term(&l_atom.args);
                let op = if lo_strict == Some(true) || hi_strict == Some(true) {
                    CompOp::Lt
                } else {
                    CompOp::Le
                };
                body.push(Literal::Cmp(Comparison::new(lo_t, op, hi_t)));
            }
            let head_pred = match (lo_pick.is_some(), hi_pick.is_some()) {
                (true, true) => INTERVAL,
                (false, true) => LOWEND, // (-∞, hi]: only the high end varies
                (true, false) => HIGHEND, // [lo, ∞)
                (false, false) => NONEMPTY,
            };
            rules.push(Rule::new(Atom::new(head_pred, head_args), body));
        }
    }

    // Recursive merge rule (Fig. 6.1 rule (2)), bounded case only.
    let merge_op = if lo_strict == Some(true) && hi_strict == Some(true) {
        CompOp::Lt
    } else {
        CompOp::Le
    };
    if lo_strict.is_some() && hi_strict.is_some() {
        rules.push(Rule::new(
            Atom::new(INTERVAL, vec![Term::var("X"), Term::var("Y")]),
            vec![
                Literal::Pos(Atom::new(INTERVAL, vec![Term::var("X"), Term::var("W")])),
                Literal::Pos(Atom::new(INTERVAL, vec![Term::var("Z"), Term::var("Y")])),
                Literal::Cmp(Comparison::new(Term::var("Z"), merge_op, Term::var("W"))),
            ],
        ));
        // A bounded interval can also merge into an unbounded end.
    }

    // Coverage rule (Fig. 6.1 rule (3)), by boundedness shape.
    match (lo_strict.is_some(), hi_strict.is_some()) {
        (true, true) => {
            rules.push(Rule::new(
                Atom::new(OK, vec![]),
                vec![
                    Literal::Pos(Atom::new(PROBE, vec![Term::var("A"), Term::var("B")])),
                    Literal::Pos(Atom::new(INTERVAL, vec![Term::var("X"), Term::var("Y")])),
                    Literal::Cmp(Comparison::new(Term::var("X"), CompOp::Le, Term::var("A"))),
                    Literal::Cmp(Comparison::new(Term::var("B"), CompOp::Le, Term::var("Y"))),
                ],
            ));
        }
        (false, true) => {
            rules.push(Rule::new(
                Atom::new(OK, vec![]),
                vec![
                    Literal::Pos(Atom::new(PROBE, vec![Term::var("B")])),
                    Literal::Pos(Atom::new(LOWEND, vec![Term::var("Y")])),
                    Literal::Cmp(Comparison::new(Term::var("B"), CompOp::Le, Term::var("Y"))),
                ],
            ));
        }
        (true, false) => {
            rules.push(Rule::new(
                Atom::new(OK, vec![]),
                vec![
                    Literal::Pos(Atom::new(PROBE, vec![Term::var("A")])),
                    Literal::Pos(Atom::new(HIGHEND, vec![Term::var("X")])),
                    Literal::Cmp(Comparison::new(Term::var("X"), CompOp::Le, Term::var("A"))),
                ],
            ));
        }
        (false, false) => {
            rules.push(Rule::new(
                Atom::new(OK, vec![]),
                vec![
                    Literal::Pos(Atom::new(PROBE, vec![])),
                    Literal::Pos(Atom::new(NONEMPTY, vec![])),
                ],
            ));
        }
    }

    Program::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_cq;
    use ccpi_storage::tuple;

    fn forbidden() -> Cqc {
        let cq = parse_cq("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").unwrap();
        Cqc::with_local(cq, "l").unwrap()
    }

    fn rel(tuples: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(2, tuples.iter().map(|&(a, b)| tuple![a, b]))
    }

    #[test]
    fn icq_detection() {
        assert!(is_icq(&forbidden()));
        // Two remote variables linked by a comparison: not an ICQ.
        let cq = parse_cq("panic :- l(X) & r(Z) & s(W) & Z < W.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        assert!(!is_icq(&c));
        // Two remote variables, each independently bounded: still an ICQ
        // (but not single-remote-var).
        let cq = parse_cq("panic :- l(X) & r(Z) & s(W) & Z < X & W < X.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        assert!(is_icq(&c));
        assert!(matches!(
            IcqTest::new(&c, Domain::Dense),
            Err(IcqError::NotSingleRemoteVar(2))
        ));
    }

    #[test]
    fn example_5_3_regions() {
        let t = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        let region = t.region_for(&tuple![3, 6]).unwrap();
        assert_eq!(region, vec![Interval::closed(3, 6)]);
        // Empty interval from an inverted tuple.
        assert_eq!(t.region_for(&tuple![6, 3]).unwrap(), vec![]);
    }

    #[test]
    fn example_5_3_and_6_1_coverage() {
        let t = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        let local = rel(&[(3, 6), (5, 10)]);
        assert!(t.test(&tuple![4, 8], &local).holds());
        assert!(!t.test(&tuple![2, 8], &local).holds());
        assert!(!t.test(&tuple![4, 11], &local).holds());
        // The union phenomenon: no single tuple covers (4,8).
        assert!(!t.test(&tuple![4, 8], &rel(&[(3, 6)])).holds());
        assert!(!t.test(&tuple![4, 8], &rel(&[(5, 10)])).holds());
    }

    #[test]
    fn fig_6_1_program_shape() {
        let icq = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        let d = DatalogIntervalTest::new(icq).unwrap();
        let text = d.program().to_string();
        // Rule (1): basis from l (plus the nonempty guard X <= Y).
        assert!(text.contains("interval(X,Y) :- l(X,Y) & X <= Y."), "{text}");
        // Rule (2): the recursive merge with Z <= W.
        assert!(
            text.contains("interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W."),
            "{text}"
        );
        // Rule (3): coverage (ok via the probe).
        assert!(
            text.contains("ok :- probe(A,B) & interval(X,Y) & X <= A & B <= Y."),
            "{text}"
        );
    }

    #[test]
    fn datalog_test_matches_paper_example() {
        let icq = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        let d = DatalogIntervalTest::new(icq).unwrap();
        let local = rel(&[(3, 6), (5, 10)]);
        assert!(d.test(&tuple![4, 8], &local).holds());
        assert!(!d.test(&tuple![2, 8], &local).holds());
        assert!(!d.test(&tuple![4, 11], &local).holds());
        // Chains of three intervals need the recursion.
        let chain = rel(&[(0, 4), (3, 8), (7, 12)]);
        assert!(d.test(&tuple![1, 11], &chain).holds());
        assert!(!d.test(&tuple![1, 13], &chain).holds());
    }

    #[test]
    fn strict_comparisons_respected() {
        // panic :- l(X,Y) & r(Z) & X < Z & Z < Y — open intervals.
        let cq = parse_cq("panic :- l(X,Y) & r(Z) & X < Z & Z < Y.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        // (3,6) ∪ (6,10) leaves 6 uncovered; inserting (4,8) is unsafe.
        let local = rel(&[(3, 6), (6, 10)]);
        assert!(!t.test(&tuple![4, 8], &local).holds());
        // (3,6) ∪ (5,10) covers (4,8).
        let local = rel(&[(3, 6), (5, 10)]);
        assert!(t.test(&tuple![4, 8], &local).holds());
        // Same through the datalog program (merge uses Z < W).
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        assert!(!d.test(&tuple![4, 8], &rel(&[(3, 6), (6, 10)])).holds());
        assert!(d.test(&tuple![4, 8], &rel(&[(3, 6), (5, 10)])).holds());
    }

    #[test]
    fn one_sided_bounds() {
        // Only a lower bound on Z: forbidden regions are [X, ∞).
        let cq = parse_cq("panic :- l(X) & r(Z) & X <= Z.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        let local = Relation::from_tuples(1, [tuple![5]]);
        // Inserting 7: [7,∞) ⊆ [5,∞) ✓.
        assert!(t.test(&tuple![7], &local).holds());
        // Inserting 3: [3,∞) ⊄ [5,∞).
        assert!(!t.test(&tuple![3], &local).holds());
        // Datalog path (HIGHEND shape).
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        assert!(d.test(&tuple![7], &local).holds());
        assert!(!d.test(&tuple![3], &local).holds());
    }

    #[test]
    fn equality_pins_a_point() {
        let cq = parse_cq("panic :- l(X) & r(Z) & Z = X.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        let local = Relation::from_tuples(1, [tuple![5]]);
        assert!(t.test(&tuple![5], &local).holds());
        assert!(!t.test(&tuple![6], &local).holds());
        // Datalog path folds Z = X into closed bounds.
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        assert!(d.test(&tuple![5], &local).holds());
        assert!(!d.test(&tuple![6], &local).holds());
    }

    #[test]
    fn disequality_splits_regions() {
        // Z <> X forbids everything except the point X.
        let cq = parse_cq("panic :- l(X) & r(Z) & Z <> X.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        let region = t.region_for(&tuple![5]).unwrap();
        assert_eq!(region.len(), 2); // (-∞,5) and (5,∞)
                                     // Two tuples 5 and 6: union is everything (each covers the other's
                                     // hole) — any insertion is safe.
        let local = Relation::from_tuples(1, [tuple![5], tuple![6]]);
        assert!(t.test(&tuple![7], &local).holds());
        // One tuple only: inserting a different point is unsafe (its
        // region covers the other's hole).
        let local = Relation::from_tuples(1, [tuple![5]]);
        assert!(!t.test(&tuple![7], &local).holds());
        assert!(t.test(&tuple![5], &local).holds());
        // The datalog generator refuses <> (falls back to IcqTest).
        assert!(matches!(
            DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()),
            Err(IcqError::HasDisequality)
        ));
    }

    #[test]
    fn filters_gate_contributions() {
        // Only tuples with X <= Y contribute (valid windows).
        let cq = parse_cq("panic :- l(X,Y,F) & r(Z) & X <= Z & Z <= Y & F = 1.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        let local = Relation::from_tuples(3, [tuple![3, 6, 1], tuple![5, 10, 0]]);
        // (5,10) is disabled by F = 0, so [4,8] is not covered.
        assert!(!t.test(&tuple![4, 8, 1], &local).holds());
        // A disabled insertion is always safe.
        assert!(t.test(&tuple![4, 8, 0], &local).holds());
    }

    #[test]
    fn multiple_lower_bounds_take_the_max() {
        // panic :- l(X,W,Y) & r(Z) & X <= Z & W <= Z & Z <= Y.
        let cq = parse_cq("panic :- l(X,W,Y) & r(Z) & X <= Z & W <= Z & Z <= Y.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        // Tuple (1, 4, 9): forbidden region is [4, 9].
        assert_eq!(
            t.region_for(&tuple![1, 4, 9]).unwrap(),
            vec![Interval::closed(4, 9)]
        );
        // Datalog basis has one rule per lower-bound choice.
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        let text = d.program().to_string();
        assert!(
            text.contains("interval(X,Y) :- l(X,W,Y) & W <= X & X <= Y."),
            "{text}"
        );
        assert!(
            text.contains("interval(W,Y) :- l(X,W,Y) & X <= W & W <= Y."),
            "{text}"
        );
        let local = Relation::from_tuples(3, [tuple![1, 4, 9]]);
        assert!(d.test(&tuple![5, 5, 8], &local).holds());
        assert!(!d.test(&tuple![1, 1, 8], &local).holds());
    }

    #[test]
    fn integer_domain_merges_adjacent_windows() {
        let t = IcqTest::new(&forbidden(), Domain::Integer).unwrap();
        let local = rel(&[(3, 5), (6, 10)]);
        assert!(t.test(&tuple![4, 8], &local).holds());
        // Dense mode must not.
        let t = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        assert!(!t.test(&tuple![4, 8], &local).holds());
    }

    #[test]
    fn mixed_strictness_rejected_by_datalog_generator() {
        let cq = parse_cq("panic :- l(X,W,Y) & r(Z) & X <= Z & W < Z & Z <= Y.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let icq = IcqTest::new(&c, Domain::Dense).unwrap();
        assert!(matches!(
            DatalogIntervalTest::new(icq),
            Err(IcqError::MixedStrictness)
        ));
    }

    /// The paper's negative result, §6: "it takes k + 1 tuples to cover
    /// the inserted tuple" — coverage may require unboundedly many local
    /// tuples, so no fixed RA expression can be the complete local test.
    /// We materialize the witness family: k staggered intervals whose
    /// union covers the insert only when *all* of them are consulted.
    #[test]
    fn coverage_needs_unboundedly_many_tuples() {
        let t = IcqTest::new(&forbidden(), Domain::Dense).unwrap();
        for k in 1..12usize {
            // Intervals [2i, 2i+3] for i = 0..k: the chain covers
            // [0, 2(k-1)+3]; dropping any one leaves a gap.
            let chain: Vec<(i64, i64)> = (0..k as i64).map(|i| (2 * i, 2 * i + 3)).collect();
            let local = rel(&chain);
            let probe = tuple![1, 2 * (k as i64 - 1) + 2];
            assert!(t.test(&probe, &local).holds(), "k={k}");
            for drop in 1..k.saturating_sub(1) {
                let mut partial = chain.clone();
                partial.remove(drop);
                assert!(!t.test(&probe, &rel(&partial)).holds(), "k={k} drop={drop}");
            }
        }
    }

    /// The both-unbounded shape: no comparison touches Z, so each
    /// qualifying local tuple forbids the whole domain (NONEMPTY shape in
    /// the generated program).
    #[test]
    fn unbounded_both_sides() {
        let cq = parse_cq("panic :- l(X) & r(Z) & X <= 5.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        // A qualifying tuple exists: everything is already forbidden, so
        // any further insert is covered.
        let local = Relation::from_tuples(1, [tuple![3]]);
        assert!(t.test(&tuple![1], &local).holds());
        // Only a non-qualifying tuple (X > 5): inserting a qualifying one
        // expands the forbidden region from ∅ to everything — not covered.
        let local = Relation::from_tuples(1, [tuple![9]]);
        assert!(!t.test(&tuple![1], &local).holds());
        // A non-qualifying insert is always safe.
        assert!(t.test(&tuple![9], &local).holds());
        // Datalog path (nonempty/probe-0-ary shape).
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        let text = d.program().to_string();
        assert!(text.contains("nonempty :- l(X) & X <= 5."), "{text}");
        assert!(text.contains("ok :- probe & nonempty."), "{text}");
        assert!(d
            .test(&tuple![1], &Relation::from_tuples(1, [tuple![3]]))
            .holds());
        assert!(!d
            .test(&tuple![1], &Relation::from_tuples(1, [tuple![9]]))
            .holds());
    }

    /// The lowend shape: only upper bounds on Z, intervals (-inf, hi].
    #[test]
    fn unbounded_below() {
        let cq = parse_cq("panic :- l(Y) & r(Z) & Z <= Y.").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let t = IcqTest::new(&c, Domain::Dense).unwrap();
        let local = Relation::from_tuples(1, [tuple![10]]);
        assert!(t.test(&tuple![7], &local).holds()); // (-inf,7] ⊆ (-inf,10]
        assert!(!t.test(&tuple![12], &local).holds());
        let d = DatalogIntervalTest::new(IcqTest::new(&c, Domain::Dense).unwrap()).unwrap();
        assert!(d.test(&tuple![7], &local).holds());
        assert!(!d.test(&tuple![12], &local).holds());
    }

    /// Cross-validation: IcqTest, the datalog program, and the Theorem 5.2
    /// containment test agree on a grid of workloads.
    #[test]
    fn three_way_agreement() {
        use crate::thm52::complete_local_test;
        use ccpi_arith::Solver;
        let c = forbidden();
        let icq = IcqTest::new(&c, Domain::Dense).unwrap();
        let datalog = DatalogIntervalTest::new(icq.clone()).unwrap();
        let locals = [
            vec![],
            vec![(3, 6)],
            vec![(3, 6), (5, 10)],
            vec![(3, 5), (7, 9)],
            vec![(0, 2), (2, 4), (4, 6)],
        ];
        let probes = [(4, 8), (3, 6), (0, 6), (5, 5), (8, 2), (1, 1)];
        for l in &locals {
            let local = rel(l);
            for &(a, b) in &probes {
                let t = tuple![a, b];
                let v1 = icq.test(&t, &local).holds();
                let v2 = datalog.test(&t, &local).holds();
                let v3 = complete_local_test(&c, &t, &local, Solver::dense()).holds();
                assert_eq!(v1, v2, "icq vs datalog on {l:?} + ({a},{b})");
                assert_eq!(v1, v3, "icq vs thm52 on {l:?} + ({a},{b})");
            }
        }
    }
}
