#!/usr/bin/env bash
# Perf guard: re-measures the E9 check-throughput ladder and the E10
# delta-vs-snapshot harness at 10k tuples and fails if checks/sec
# regressed more than 30% against the committed BENCH_joins.json /
# BENCH_delta.json numbers (best of two runs each, so scheduler noise
# does not trip it). A third lane times E12 crash recovery — checkpoint
# load, constraint recompilation, replay of 10k logged updates, and the
# audited full check — and fails beyond +30% wall clock against the
# committed BENCH_recovery.json (regenerate it with `experiments
# --crash`). A fourth lane re-runs the E13 64-client group-commit cell
# over real TCP and fails below 70% of the committed BENCH_server.json
# admission rate — or on any soundness-twin divergence (regenerate with
# `experiments --server`). A fifth lane replays the E14 pre-test A/B at
# 10k tuples and fails if the compiled pipeline settles less than 70% of
# the committed BENCH_pretest.json settled fraction, if pipeline
# checks/sec regress more than 30%, or on any legacy-vs-pipeline verdict
# divergence (regenerate with `experiments --table e14`). A sixth lane
# re-measures the E15 4-shard/10k partitioned-admission cell and fails
# below 70% of the committed BENCH_shard.json admission rate, below a
# 70% absolute committed-update rate, on any cross-shard escalation or
# wire traffic under the fragment-closed partitioning, or on any
# single-site-twin divergence (regenerate with `experiments --shard`).
# Wired into CI after the test job; run it
# locally before committing performance-sensitive changes:
#
#   suite/perf_guard.sh
#
# Exit codes: 0 ok, 1 regression, 2 harness/parse failure.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p ccpi-bench --bin experiments -- --guard
