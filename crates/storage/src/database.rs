//! Databases: a catalog of declared relations with locality metadata.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::update::Update;
use ccpi_ir::Sym;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Where a relation's data lives, relative to the site processing updates
/// (§5: "some 'local' predicates and some 'remote' predicates").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Locality {
    /// Stored at the updating site; free to read during a local test.
    #[default]
    Local,
    /// Stored elsewhere; reading it is what complete local tests avoid.
    Remote,
}

/// A catalog entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name (= predicate name in constraints).
    pub name: Sym,
    /// Arity.
    pub arity: usize,
    /// Local or remote.
    pub locality: Locality,
}

/// Errors raised by database operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The predicate is not declared.
    UnknownRelation(Sym),
    /// The tuple's arity does not match the declaration.
    ArityMismatch {
        /// Relation name.
        name: Sym,
        /// Declared arity.
        declared: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A relation was declared twice with different shapes.
    ConflictingDeclaration(Sym),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            StorageError::ArityMismatch {
                name,
                declared,
                got,
            } => write!(
                f,
                "relation `{name}` declared with arity {declared}, got tuple of arity {got}"
            ),
            StorageError::ConflictingDeclaration(n) => {
                write!(f, "conflicting re-declaration of relation `{n}`")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// An in-memory database: declared relations and their instances.
#[derive(Clone, Default)]
pub struct Database {
    decls: BTreeMap<Sym, RelationDecl>,
    relations: BTreeMap<Sym, Relation>,
    /// Monotone mutation counter; see [`Database::version`].
    version: u64,
}

impl Database {
    /// An empty database with no declarations.
    pub fn new() -> Self {
        Database::default()
    }

    /// A monotone counter bumped on every committed mutation: an insert
    /// or delete that changed the stored set, a relation replacement, a
    /// new declaration — and, conservatively, every grant of write access
    /// through [`Database::relation_mut`] (the caller may mutate through
    /// it, and the counter must never under-report). Two reads of the
    /// same version therefore saw identical contents; the converse does
    /// not hold. Clones inherit the version and then advance
    /// independently.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Declares a relation. Re-declaring with identical shape is a no-op;
    /// with a different shape it is an error.
    pub fn declare(
        &mut self,
        name: impl AsRef<str>,
        arity: usize,
        locality: Locality,
    ) -> Result<(), StorageError> {
        let name = Sym::new(name);
        let decl = RelationDecl {
            name: name.clone(),
            arity,
            locality,
        };
        match self.decls.get(&name) {
            Some(existing) if *existing != decl => Err(StorageError::ConflictingDeclaration(name)),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(name.clone(), Relation::new(arity));
                self.decls.insert(name, decl);
                self.version += 1;
                Ok(())
            }
        }
    }

    /// The declaration for `name`.
    pub fn decl(&self, name: &str) -> Option<&RelationDecl> {
        self.decls.get(name)
    }

    /// All declarations, sorted by name.
    pub fn decls(&self) -> impl Iterator<Item = &RelationDecl> {
        self.decls.values()
    }

    /// The locality of a declared relation.
    pub fn locality(&self, name: &str) -> Option<Locality> {
        self.decls.get(name).map(|d| d.locality)
    }

    /// Read access to a relation instance.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Write access to a relation instance. Counts as a mutation for
    /// [`Database::version`] even if the caller ends up not writing.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        let rel = self.relations.get_mut(name);
        if rel.is_some() {
            self.version += 1;
        }
        rel
    }

    /// Replaces the instance of a declared relation wholesale.
    ///
    /// Because [`Relation`] clones are O(1) copy-on-write, this is the cheap
    /// way to install data from another database (a site split, a wire
    /// fetch) without re-inserting tuple by tuple.
    pub fn set_relation(&mut self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let decl = self
            .decls
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(Sym::new(name)))?;
        if decl.arity != rel.arity() && !rel.is_empty() {
            return Err(StorageError::ArityMismatch {
                name: decl.name.clone(),
                declared: decl.arity,
                got: rel.arity(),
            });
        }
        self.relations.insert(decl.name.clone(), rel);
        self.version += 1;
        Ok(())
    }

    /// Inserts a tuple, validating the declaration. Returns `true` if new.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<bool, StorageError> {
        self.validate(name, &tuple)?;
        let changed = self.relations.get_mut(name).unwrap().insert(tuple);
        if changed {
            self.version += 1;
        }
        Ok(changed)
    }

    /// Deletes a tuple. Returns `true` if it was present.
    pub fn delete(&mut self, name: &str, tuple: &Tuple) -> Result<bool, StorageError> {
        self.validate(name, tuple)?;
        let changed = self.relations.get_mut(name).unwrap().remove(tuple);
        if changed {
            self.version += 1;
        }
        Ok(changed)
    }

    /// Applies an update. Returns `true` if the database changed.
    pub fn apply(&mut self, update: &Update) -> Result<bool, StorageError> {
        match update {
            Update::Insert { pred, tuple } => self.insert(pred.as_str(), tuple.clone()),
            Update::Delete { pred, tuple } => self.delete(pred.as_str(), tuple),
        }
    }

    /// Applies `update.inverse()` — undo.
    pub fn undo(&mut self, update: &Update) -> Result<bool, StorageError> {
        self.apply(&update.inverse())
    }

    /// Total number of stored tuples.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Takes an immutable, versioned snapshot of the whole database.
    ///
    /// The snapshot is the MVCC read path: it pins the current contents
    /// behind an [`Arc`], so clones of the snapshot are O(1), shareable
    /// across threads, and never observe later mutations of the source
    /// database. Capturing one is cheap — every [`Relation`] is itself
    /// copy-on-write, so only the catalog is copied, never the tuples.
    ///
    /// ```
    /// use ccpi_storage::{tuple, Database, Locality};
    /// let mut db = Database::new();
    /// db.declare("dept", 1, Locality::Local).unwrap();
    /// db.insert("dept", tuple!["toys"]).unwrap();
    /// let snap = db.snapshot();
    /// db.delete("dept", &tuple!["toys"]).unwrap();
    /// assert!(snap.relation("dept").unwrap().contains(&tuple!["toys"]));
    /// assert!(snap.version() < db.version());
    /// ```
    pub fn snapshot(&self) -> DatabaseSnapshot {
        DatabaseSnapshot {
            version: self.version,
            inner: Arc::new(self.clone()),
        }
    }

    /// Overwrites the version counter — checkpoint decode only, so a
    /// recovered database resumes the counter it was persisted with
    /// instead of the replay-order artifact of rebuilding it.
    pub(crate) fn force_version(&mut self, v: u64) {
        self.version = v;
    }

    fn validate(&self, name: &str, tuple: &Tuple) -> Result<(), StorageError> {
        let decl = self
            .decls
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(Sym::new(name)))?;
        if decl.arity != tuple.arity() {
            return Err(StorageError::ArityMismatch {
                name: decl.name.clone(),
                declared: decl.arity,
                got: tuple.arity(),
            });
        }
        Ok(())
    }
}

/// An immutable, versioned view of a [`Database`] at a single point in
/// time — the unit of the MVCC read path.
///
/// Produced by [`Database::snapshot`]. The view is pinned behind an
/// [`Arc`]: cloning a snapshot is O(1), and a reader holding one can
/// run queries (or stage 1–3 constraint judgments) concurrently with a
/// writer mutating the source database, without locks and without ever
/// seeing a torn state. [`DatabaseSnapshot::version`] reports the
/// [`Database::version`] counter at capture time, so two snapshots with
/// equal versions taken from the same lineage saw identical contents.
#[derive(Clone, Debug)]
pub struct DatabaseSnapshot {
    version: u64,
    inner: Arc<Database>,
}

impl DatabaseSnapshot {
    /// The [`Database::version`] the snapshot was captured at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The pinned database view. [`DatabaseSnapshot`] also derefs to
    /// [`Database`], so read accessors can be called directly.
    pub fn database(&self) -> &Database {
        &self.inner
    }

    /// Does `db` still carry the version this snapshot pinned? A `true`
    /// answer means no committed mutation (and no conservative
    /// write-access grant) has happened since the capture.
    pub fn is_current(&self, db: &Database) -> bool {
        self.version == db.version
    }
}

impl std::ops::Deref for DatabaseSnapshot {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.inner
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name}/{}: {rel:?}", rel.arity())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db
    }

    #[test]
    fn declare_and_insert() {
        let mut db = emp_db();
        assert!(db.insert("emp", tuple!["jones", "shoe", 50]).unwrap());
        assert!(!db.insert("emp", tuple!["jones", "shoe", 50]).unwrap());
        assert_eq!(db.relation("emp").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn locality_metadata() {
        let db = emp_db();
        assert_eq!(db.locality("emp"), Some(Locality::Local));
        assert_eq!(db.locality("dept"), Some(Locality::Remote));
        assert_eq!(db.locality("nope"), None);
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut db = emp_db();
        assert!(matches!(
            db.insert("boss", tuple!["a", "b"]),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = emp_db();
        assert!(matches!(
            db.insert("dept", tuple!["toy", "extra"]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn redeclaration_rules() {
        let mut db = emp_db();
        // Identical re-declaration OK and preserves data.
        db.insert("dept", tuple!["toy"]).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        assert_eq!(db.relation("dept").unwrap().len(), 1);
        // Conflicting re-declaration rejected.
        assert!(matches!(
            db.declare("dept", 2, Locality::Remote),
            Err(StorageError::ConflictingDeclaration(_))
        ));
        assert!(matches!(
            db.declare("dept", 1, Locality::Local),
            Err(StorageError::ConflictingDeclaration(_))
        ));
    }

    #[test]
    fn apply_and_undo() {
        let mut db = emp_db();
        let u = Update::insert("dept", tuple!["toy"]);
        assert!(db.apply(&u).unwrap());
        assert!(db.relation("dept").unwrap().contains(&tuple!["toy"]));
        assert!(db.undo(&u).unwrap());
        assert!(db.relation("dept").unwrap().is_empty());
    }

    #[test]
    fn delete_missing_is_false() {
        let mut db = emp_db();
        assert!(!db.delete("dept", &tuple!["toy"]).unwrap());
    }

    #[test]
    fn version_counts_committed_mutations_only() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.declare("dept", 1, Locality::Remote).unwrap();
        let v_decl = db.version();
        assert!(v_decl > 0);
        // Identical re-declaration commits nothing.
        db.declare("dept", 1, Locality::Remote).unwrap();
        assert_eq!(db.version(), v_decl);
        assert!(db.insert("dept", tuple!["toy"]).unwrap());
        let v_ins = db.version();
        assert!(v_ins > v_decl);
        // Duplicate insert and missing delete commit nothing.
        assert!(!db.insert("dept", tuple!["toy"]).unwrap());
        assert!(!db.delete("dept", &tuple!["shoe"]).unwrap());
        assert_eq!(db.version(), v_ins);
        assert!(db.delete("dept", &tuple!["toy"]).unwrap());
        assert!(db.version() > v_ins);
        // Failed operations commit nothing.
        let v = db.version();
        assert!(db.insert("nope", tuple![1]).is_err());
        assert_eq!(db.version(), v);
        // Write access is conservatively a mutation; a clone advances
        // independently of its origin.
        let mut snap = db.clone();
        assert_eq!(snap.version(), db.version());
        let _ = db.relation_mut("dept").unwrap();
        assert!(db.version() > snap.version());
        snap.insert("dept", tuple!["pen"]).unwrap();
        assert!(snap.version() > v);
    }

    #[test]
    fn snapshot_pins_contents_and_version() {
        let mut db = emp_db();
        db.insert("dept", tuple!["toy"]).unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.version(), db.version());
        assert!(snap.is_current(&db));
        // Mutations after the capture are invisible through the pin.
        db.insert("dept", tuple!["pen"]).unwrap();
        db.delete("dept", &tuple!["toy"]).unwrap();
        assert!(!snap.is_current(&db));
        assert!(snap.relation("dept").unwrap().contains(&tuple!["toy"]));
        assert!(!snap.relation("dept").unwrap().contains(&tuple!["pen"]));
        // Snapshot clones are cheap Arc bumps that share the same pin.
        let other = snap.clone();
        assert_eq!(other.version(), snap.version());
        assert!(other
            .database()
            .relation("dept")
            .unwrap()
            .shares_storage_with(snap.database().relation("dept").unwrap()));
    }

    #[test]
    fn snapshot_readable_from_other_threads() {
        let mut db = emp_db();
        db.insert("dept", tuple!["toy"]).unwrap();
        let snap = db.snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = snap.clone();
                std::thread::spawn(move || {
                    assert!(s.relation("dept").unwrap().contains(&tuple!["toy"]));
                    s.version()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), snap.version());
        }
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut db = emp_db();
        db.insert("dept", tuple!["toy"]).unwrap();
        let snap = db.clone();
        db.delete("dept", &tuple!["toy"]).unwrap();
        assert!(snap.relation("dept").unwrap().contains(&tuple!["toy"]));
        assert!(db.relation("dept").unwrap().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::tuple;
    use proptest::prelude::*;

    fn update_strategy() -> impl Strategy<Value = Update> {
        let t = (0i64..4, 0i64..4).prop_map(|(a, b)| tuple![a, b]);
        (t, any::<bool>()).prop_map(|(t, ins)| {
            if ins {
                Update::insert("p", t)
            } else {
                Update::delete("p", t)
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Applying a batch of updates and then undoing them in reverse
        /// restores the exact database state.
        #[test]
        fn apply_then_undo_in_reverse_is_identity(
            initial in prop::collection::btree_set((0i64..4, 0i64..4), 0..8),
            updates in prop::collection::vec(update_strategy(), 0..12),
        ) {
            let mut db = Database::new();
            db.declare("p", 2, Locality::Local).unwrap();
            for (a, b) in &initial {
                db.insert("p", tuple![*a, *b]).unwrap();
            }
            let snapshot = db.clone();
            // Record which updates actually changed the state; undo only
            // those (an insert of a present tuple must not be "undone" by
            // deleting it).
            let mut effective: Vec<&Update> = Vec::new();
            for u in &updates {
                if db.apply(u).unwrap() {
                    effective.push(u);
                }
            }
            for u in effective.into_iter().rev() {
                assert!(db.undo(u).unwrap());
            }
            prop_assert_eq!(
                db.relation("p").unwrap(),
                snapshot.relation("p").unwrap()
            );
        }

        /// Indexed lookups always agree with scans, across arbitrary
        /// mutation sequences.
        #[test]
        fn index_agrees_with_scan(
            updates in prop::collection::vec(update_strategy(), 0..20),
            probe in 0i64..4,
        ) {
            let mut db = Database::new();
            db.declare("p", 2, Locality::Local).unwrap();
            for u in &updates {
                let _ = db.apply(u).unwrap();
            }
            let rel = db.relation("p").unwrap();
            let val = ccpi_ir::Value::int(probe);
            let mut indexed: Vec<Tuple> = rel.probe(0, &val).as_slice().to_vec();
            indexed.sort();
            let mut scanned: Vec<Tuple> =
                rel.iter().filter(|t| t[0] == val).cloned().collect();
            scanned.sort();
            prop_assert_eq!(indexed, scanned);
        }
    }
}
