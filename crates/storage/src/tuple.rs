//! Tuples of constant values.

use ccpi_ir::Value;
use std::fmt;
use std::ops::Index;

/// An immutable tuple of constants. Ordered lexicographically (by the total
/// order on [`Value`]), which gives relations a deterministic iteration
/// order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// The empty (0-ary) tuple — the single possible tuple of `panic`.
    pub fn unit() -> Self {
        Tuple(Box::new([]))
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component accessor.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterates over components.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }

    /// Approximate in-memory footprint in bytes, used by the distributed
    /// simulation to meter transfer volume.
    pub fn transfer_bytes(&self) -> usize {
        self.0
            .iter()
            .map(|v| match v {
                Value::Int(_) => 8,
                Value::Str(s) => s.as_str().len() + 8,
            })
            .sum::<usize>()
            + 8
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = crate::tuple!["jones", "shoe", 50];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("jones"));
        assert_eq!(t.get(2), Some(&Value::int(50)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn unit_tuple() {
        let t = Tuple::unit();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = crate::tuple![1, 2];
        let b = crate::tuple![1, 3];
        let c = crate::tuple![2, 0];
        assert!(a < b && b < c);
    }

    #[test]
    fn display() {
        assert_eq!(crate::tuple!["jones", 50].to_string(), "(jones,50)");
    }

    #[test]
    fn transfer_bytes_scale_with_content() {
        assert!(
            crate::tuple!["a-long-department-name", 1].transfer_bytes()
                > crate::tuple!["d", 1].transfer_bytes()
        );
    }
}
