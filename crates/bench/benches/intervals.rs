//! E5 — Theorem 6.1 / Fig. 6.1: the three equivalent forbidden-interval
//! tests (interval-set sweep, generated recursive datalog, Theorem 5.2
//! containment), swept over the local relation size.

use ccpi_arith::{Domain, Solver};
use ccpi_bench::forbidden_intervals;
use ccpi_localtest::{complete_local_test, DatalogIntervalTest, IcqTest};
use ccpi_storage::tuple;
use ccpi_workload::windows::{local_relation, WindowConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_intervals(c: &mut Criterion) {
    let mut g = c.benchmark_group("intervals/local_size");
    g.sample_size(10);
    let cqc = forbidden_intervals();
    let icq = IcqTest::new(&cqc, Domain::Dense).unwrap();
    let datalog = DatalogIntervalTest::new(icq.clone()).unwrap();

    for n in [10usize, 50, 100, 1_000] {
        let cfg = WindowConfig {
            windows: n,
            horizon: 10_000,
            width: (10, 200),
        };
        let windows = local_relation(&cfg, &mut ccpi_workload::rng(2));
        let probe = tuple![5_000, 5_050];
        g.bench_with_input(BenchmarkId::new("interval_set", n), &n, |b, _| {
            b.iter(|| black_box(icq.test(&probe, &windows)));
        });
        // The Fig. 6.1 program materializes O(|L|^2) merged intervals —
        // it demonstrates expressibility (Theorem 6.1), not efficiency —
        // so its sweep is capped.
        if n <= 50 {
            g.bench_with_input(BenchmarkId::new("fig61_datalog", n), &n, |b, _| {
                b.iter(|| black_box(datalog.test(&probe, &windows)));
            });
        }
        g.bench_with_input(BenchmarkId::new("thm52_containment", n), &n, |b, _| {
            b.iter(|| black_box(complete_local_test(&cqc, &probe, &windows, Solver::dense())));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intervals);
criterion_main!(benches);
