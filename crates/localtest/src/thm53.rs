//! **Theorem 5.3** — compiling arithmetic-free complete local tests to
//! relational algebra.
//!
//! > In time at most exponential in the size of an arithmetic-free CQC it
//! > is possible to construct an expression of relational algebra whose
//! > nonemptiness is the complete local test for preservation of the CQC
//! > after an insertion to the local relation.
//!
//! The construction follows the proof sketch: let `ω` be a tuple of
//! variables of `L`'s arity; we ask for a containment mapping from
//! `RED(ω,l,C)` to `RED(t,l,C)`, and "each containment mapping provides a
//! set of constraints on the variables in `ω`", which translate into a
//! selection on `L`. Because `t` is only known at update time, the
//! compiler works **symbolically**: the plan stores, per mapping,
//!
//! * conditions on `t` itself (the mapping only applies to matching
//!   inserts), and
//! * selection predicates on `L` mixing `#i = t_j` and `#i = constant`
//!   (plus the pattern conditions of `l` — Example 5.4's
//!   `σ_{#1=a ∧ #2=b ∧ #3=b}(L)`).
//!
//! "Here we can allow constants and repeated variables to appear in the
//! local and remote predicates" — the compiler supports both; the
//! arithmetic-free assumption is what makes the union collapse
//! (containment in the union ⇔ containment in one member, by
//! Sagiv–Yannakakis), so the test is a union of selections, evaluated
//! row-at-a-time.

use crate::cqc::Cqc;
use crate::thm52::LocalTestResult;
use ccpi_ir::{CompOp, IrError, Sym, Term, Value, Var};
use ccpi_ra::{Expr, SelPred};
use ccpi_storage::{Relation, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// A pattern condition shared by `l`-matching rows and candidate inserts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PatCond {
    /// Components `i` and `j` must be equal (repeated variable in `l`).
    Eq(usize, usize),
    /// Component `i` must equal a constant (constant in `l`).
    EqConst(usize, Value),
}

impl PatCond {
    fn check(&self, t: &Tuple) -> bool {
        match self {
            PatCond::Eq(i, j) => t[*i] == t[*j],
            PatCond::EqConst(i, c) => t[*i] == *c,
        }
    }

    fn sel(&self) -> SelPred {
        match self {
            PatCond::Eq(i, j) => SelPred::col_col(*i, CompOp::Eq, *j),
            PatCond::EqConst(i, c) => SelPred::col_const(*i, CompOp::Eq, c.clone()),
        }
    }
}

/// A selection predicate with the insert's components as parameters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SymbolicSel {
    /// `#i = t_j` — column `i` of `L` equals component `j` of the insert.
    ColT(usize, usize),
    /// `#i = c`.
    ColConst(usize, Value),
}

impl SymbolicSel {
    fn instantiate(&self, t: &Tuple) -> SelPred {
        match self {
            SymbolicSel::ColT(i, j) => SelPred::col_const(*i, CompOp::Eq, t[*j].clone()),
            SymbolicSel::ColConst(i, c) => SelPred::col_const(*i, CompOp::Eq, c.clone()),
        }
    }

    fn check(&self, row: &Tuple, t: &Tuple) -> bool {
        match self {
            SymbolicSel::ColT(i, j) => row[*i] == t[*j],
            SymbolicSel::ColConst(i, c) => row[*i] == *c,
        }
    }
}

/// One containment mapping's contribution to the plan.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MappingPlan {
    /// Conditions the insert must satisfy for this mapping to exist.
    pub t_conditions: Vec<PatCond>,
    /// The selection on `L` (pattern conditions are added separately).
    pub selections: Vec<SymbolicSel>,
}

/// The compiled, parameterized complete local test of Theorem 5.3.
#[derive(Clone, Debug)]
pub struct LocalTestPlan {
    local_pred: Sym,
    arity: usize,
    /// Conditions a row of `L` must meet to produce a reduction at all.
    pub l_pattern: Vec<PatCond>,
    /// The same conditions on the insert (no reduction ⇒ trivially safe).
    pub t_pattern: Vec<PatCond>,
    /// One entry per containment-mapping shape.
    pub mappings: Vec<MappingPlan>,
}

/// Compiles the plan for an **arithmetic-free** CQC.
pub fn compile_ra(cqc: &Cqc) -> Result<LocalTestPlan, IrError> {
    if !cqc.cq().is_arithmetic_free() {
        return Err(IrError::UnexpectedArithmetic);
    }
    let l = cqc.local_atom();
    let arity = l.arity();

    // Pattern conditions from `l`'s own shape.
    let mut pattern: Vec<PatCond> = Vec::new();
    let mut first_pos: BTreeMap<&Var, usize> = BTreeMap::new();
    for (i, arg) in l.args.iter().enumerate() {
        match arg {
            Term::Const(c) => pattern.push(PatCond::EqConst(i, c.clone())),
            Term::Var(v) => {
                if let Some(&j) = first_pos.get(v) {
                    pattern.push(PatCond::Eq(j, i));
                } else {
                    first_pos.insert(v, i);
                }
            }
        }
    }

    // Source (ω-side) and target (t-side) views of the remote subgoals.
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Src {
        Omega(usize),
        RemoteVar(Var),
        Const(Value),
    }
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Tgt {
        T(usize),
        RemoteVar(Var),
        Const(Value),
    }
    let classify_src = |t: &Term| -> Src {
        match t {
            Term::Const(c) => Src::Const(c.clone()),
            Term::Var(v) => match first_pos.get(v) {
                Some(&i) => Src::Omega(i),
                None => Src::RemoteVar(v.clone()),
            },
        }
    };
    let classify_tgt = |t: &Term| -> Tgt {
        match t {
            Term::Const(c) => Tgt::Const(c.clone()),
            Term::Var(v) => match first_pos.get(v) {
                Some(&i) => Tgt::T(i),
                None => Tgt::RemoteVar(v.clone()),
            },
        }
    };
    let remotes: Vec<(&Sym, Vec<Src>, Vec<Tgt>)> = cqc
        .remotes()
        .map(|a| {
            (
                &a.pred,
                a.args.iter().map(&classify_src).collect(),
                a.args.iter().map(&classify_tgt).collect(),
            )
        })
        .collect();

    // Backtracking enumeration of all symbolic containment mappings from
    // the ω-side remotes into the t-side remotes.
    #[derive(Clone, Default)]
    struct State {
        bindings: Vec<(Var, Tgt)>,
        t_conditions: Vec<PatCond>,
        selections: Vec<SymbolicSel>,
    }
    fn push_unique<T: PartialEq>(v: &mut Vec<T>, x: T) {
        if !v.contains(&x) {
            v.push(x);
        }
    }
    fn unify_targets(a: &Tgt, b: &Tgt, st: &mut State) -> bool
    where
        Tgt: PartialEq,
    {
        match (a, b) {
            (Tgt::T(j), Tgt::T(k)) => {
                if j != k {
                    let (j, k) = (*j.min(k), *j.max(k));
                    push_unique(&mut st.t_conditions, PatCond::Eq(j, k));
                }
                true
            }
            (Tgt::T(j), Tgt::Const(c)) | (Tgt::Const(c), Tgt::T(j)) => {
                push_unique(&mut st.t_conditions, PatCond::EqConst(*j, c.clone()));
                true
            }
            (Tgt::Const(c), Tgt::Const(d)) => c == d,
            (Tgt::RemoteVar(u), Tgt::RemoteVar(w)) => u == w,
            _ => false,
        }
    }
    fn align(src: &Src, tgt: &Tgt, st: &mut State) -> bool {
        match (src, tgt) {
            (Src::Omega(i), Tgt::T(j)) => {
                push_unique(&mut st.selections, SymbolicSel::ColT(*i, *j));
                true
            }
            (Src::Omega(i), Tgt::Const(c)) => {
                push_unique(&mut st.selections, SymbolicSel::ColConst(*i, c.clone()));
                true
            }
            (Src::Omega(_), Tgt::RemoteVar(_)) => false,
            (Src::Const(c), Tgt::T(j)) => {
                push_unique(&mut st.t_conditions, PatCond::EqConst(*j, c.clone()));
                true
            }
            (Src::Const(c), Tgt::Const(d)) => c == d,
            (Src::Const(_), Tgt::RemoteVar(_)) => false,
            (Src::RemoteVar(x), tgt) => {
                if let Some((_, bound)) = st.bindings.iter().find(|(v, _)| v == x) {
                    let bound = bound.clone();
                    unify_targets(&bound, tgt, st)
                } else {
                    st.bindings.push((x.clone(), tgt.clone()));
                    true
                }
            }
        }
    }
    fn backtrack(
        remotes: &[(&Sym, Vec<Src>, Vec<Tgt>)],
        depth: usize,
        st: State,
        out: &mut Vec<MappingPlan>,
    ) {
        if depth == remotes.len() {
            let plan = MappingPlan {
                t_conditions: st.t_conditions,
                selections: st.selections,
            };
            if !out.contains(&plan) {
                out.push(plan);
            }
            return;
        }
        let (pred, src_args, _) = &remotes[depth];
        for (tpred, _, tgt_args) in remotes {
            if tpred != pred || tgt_args.len() != src_args.len() {
                continue;
            }
            let mut next = st.clone();
            if src_args
                .iter()
                .zip(tgt_args)
                .all(|(s, t)| align(s, t, &mut next))
            {
                backtrack(remotes, depth + 1, next, out);
            }
        }
    }
    let mut mappings = Vec::new();
    backtrack(&remotes, 0, State::default(), &mut mappings);

    Ok(LocalTestPlan {
        local_pred: cqc.local_pred().clone(),
        arity,
        l_pattern: pattern.clone(),
        t_pattern: pattern,
        mappings,
    })
}

impl LocalTestPlan {
    /// The local predicate the plan scans.
    pub fn local_pred(&self) -> &Sym {
        &self.local_pred
    }

    /// Number of containment-mapping shapes in the plan.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// The relational-algebra expression for a concrete insert, or `None`
    /// when the insert has no reduction / no applicable mapping exists —
    /// `None` with `trivial == true` means the test trivially holds.
    pub fn to_ra(&self, t: &Tuple) -> RaInstance {
        assert_eq!(t.arity(), self.arity, "insert arity mismatch");
        if !self.t_pattern.iter().all(|p| p.check(t)) {
            return RaInstance::TriviallyHolds;
        }
        let mut arms: Vec<Expr> = Vec::new();
        for m in &self.mappings {
            if !m.t_conditions.iter().all(|p| p.check(t)) {
                continue;
            }
            let mut preds: Vec<SelPred> = self.l_pattern.iter().map(PatCond::sel).collect();
            preds.extend(m.selections.iter().map(|s| s.instantiate(t)));
            arms.push(Expr::scan(self.local_pred.as_str()).select(preds));
        }
        match Expr::union_all(arms) {
            Some(e) => RaInstance::Test(e),
            None => RaInstance::NoApplicableMapping,
        }
    }

    /// Direct evaluation of the compiled test (no RA materialization):
    /// `Holds` iff some row of `local` satisfies some applicable mapping.
    pub fn test(&self, t: &Tuple, local: &Relation) -> LocalTestResult {
        assert_eq!(t.arity(), self.arity, "insert arity mismatch");
        if !self.t_pattern.iter().all(|p| p.check(t)) {
            return LocalTestResult::Holds;
        }
        let applicable: Vec<&MappingPlan> = self
            .mappings
            .iter()
            .filter(|m| m.t_conditions.iter().all(|p| p.check(t)))
            .collect();
        if applicable.is_empty() {
            return LocalTestResult::Unknown;
        }
        for row in local.iter() {
            if !self.l_pattern.iter().all(|p| p.check(row)) {
                continue;
            }
            for m in &applicable {
                if m.selections.iter().all(|s| s.check(row, t)) {
                    return LocalTestResult::Holds;
                }
            }
        }
        LocalTestResult::Unknown
    }
}

/// The instantiated form of the compiled test for one insert.
#[derive(Clone, Debug)]
pub enum RaInstance {
    /// The insert has no reduction: safe without looking at anything.
    TriviallyHolds,
    /// No containment-mapping shape applies: the test is `false` — the
    /// insertion needs a remote check no matter what `L` holds.
    NoApplicableMapping,
    /// Evaluate this expression; nonempty ⇔ the constraint is preserved.
    Test(Expr),
}

impl fmt::Display for LocalTestPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan over {}/{} ({} mappings):",
            self.local_pred,
            self.arity,
            self.mappings.len()
        )?;
        for (k, m) in self.mappings.iter().enumerate() {
            write!(f, "  [{k}] σ[")?;
            let mut first = true;
            for p in self.l_pattern.iter() {
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                match p {
                    PatCond::Eq(i, j) => write!(f, "#{} = #{}", i + 1, j + 1)?,
                    PatCond::EqConst(i, c) => write!(f, "#{} = {c}", i + 1)?,
                }
            }
            for s in &m.selections {
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                match s {
                    SymbolicSel::ColT(i, j) => write!(f, "#{} = t{}", i + 1, j + 1)?,
                    SymbolicSel::ColConst(i, c) => write!(f, "#{} = {c}", i + 1)?,
                }
            }
            write!(f, "]({})", self.local_pred)?;
            if !m.t_conditions.is_empty() {
                write!(f, "  when ")?;
                for (n, p) in m.t_conditions.iter().enumerate() {
                    if n > 0 {
                        write!(f, " ∧ ")?;
                    }
                    match p {
                        PatCond::Eq(i, j) => write!(f, "t{} = t{}", i + 1, j + 1)?,
                        PatCond::EqConst(i, c) => write!(f, "t{} = {c}", i + 1)?,
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_cq;
    use ccpi_storage::{tuple, Database, Locality};

    fn cqc(src: &str) -> Cqc {
        Cqc::with_local(parse_cq(src).unwrap(), "l").unwrap()
    }

    /// Example 5.4: C1: panic :- l(X,Y,Y) & r(Y,Z,X).
    #[test]
    fn example_5_4_plan() {
        let plan = compile_ra(&cqc("panic :- l(X,Y,Y) & r(Y,Z,X).")).unwrap();
        // One mapping; pattern #2 = #3.
        assert_eq!(plan.mapping_count(), 1);
        assert_eq!(plan.l_pattern, vec![PatCond::Eq(1, 2)]);
        // t = (a,b,c): no reduction — trivially holds.
        let inst = plan.to_ra(&tuple!["a", "b", "c"]);
        assert!(matches!(inst, RaInstance::TriviallyHolds));
        // t = (a,b,b): σ_{#1=a ∧ #2=b ∧ #3=b... } — as the paper puts it,
        // "the complete local test is whether this tuple already exists in
        // L, not a very useful test, but one that technically should be
        // made."
        let RaInstance::Test(e) = plan.to_ra(&tuple!["a", "b", "b"]) else {
            panic!("expected a test expression");
        };
        // Equivalent to the paper's σ_{#1=a ∧ #2=b ∧ #3=b}(L): the pattern
        // condition #2 = #3 together with #2 = b entails #3 = b.
        assert_eq!(e.to_string(), "σ[#2 = #3 ∧ #2 = b ∧ #1 = a](l)");

        // Evaluate it end-to-end.
        let mut db = Database::new();
        db.declare("l", 3, Locality::Local).unwrap();
        db.insert("l", tuple!["a", "b", "b"]).unwrap();
        assert!(e.nonempty(&db).unwrap());
        db.delete("l", &tuple!["a", "b", "b"]).unwrap();
        assert!(!e.nonempty(&db).unwrap());
    }

    #[test]
    fn plan_test_equals_direct_membership_for_example_5_4() {
        let plan = compile_ra(&cqc("panic :- l(X,Y,Y) & r(Y,Z,X).")).unwrap();
        let mut local = Relation::new(3);
        local.insert(tuple!["a", "b", "b"]);
        assert!(plan.test(&tuple!["a", "b", "b"], &local).holds());
        assert!(!plan.test(&tuple!["a", "c", "c"], &local).holds());
        assert!(plan.test(&tuple!["x", "y", "z"], &local).holds()); // no reduction
    }

    #[test]
    fn duplicate_remote_subgoals_multiply_mappings() {
        let p1 = compile_ra(&cqc("panic :- l(X) & r(X,Z).")).unwrap();
        assert_eq!(p1.mapping_count(), 1);
        // r(X,Z) & r(X,W): all four shape combinations collapse to the
        // same selection after dedup.
        let p2 = compile_ra(&cqc("panic :- l(X) & r(X,Z) & r(X,W).")).unwrap();
        assert_eq!(p2.mapping_count(), 1);
        // Distinct selections survive: r(X,Z) & r(Y,Z) can map each source
        // atom to either target column pattern.
        let p3 = compile_ra(&cqc("panic :- l(X,Y) & r(X,Z) & r(Y,Z).")).unwrap();
        assert!(p3.mapping_count() >= 2, "{}", p3.mapping_count());
    }

    #[test]
    fn remote_constants_become_t_conditions() {
        // C: panic :- l(X) & r(X, alert): the reduction of t has r(t1,
        // alert); a tuple s covers it iff s1 = t1.
        let plan = compile_ra(&cqc("panic :- l(X) & r(X,alert).")).unwrap();
        assert_eq!(plan.mapping_count(), 1);
        let mut local = Relation::new(1);
        local.insert(tuple![7]);
        assert!(plan.test(&tuple![7], &local).holds());
        assert!(!plan.test(&tuple![8], &local).holds());
    }

    #[test]
    fn arithmetic_is_rejected() {
        let c = cqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.");
        assert!(matches!(compile_ra(&c), Err(IrError::UnexpectedArithmetic)));
    }

    #[test]
    fn source_var_to_distinct_remote_vars_is_one_shape() {
        // r(Z) & s(Z): Z must map consistently.
        let plan = compile_ra(&cqc("panic :- l(X) & r(X,Z) & s(Z).")).unwrap();
        assert_eq!(plan.mapping_count(), 1);
        let mut local = Relation::new(1);
        local.insert(tuple![1]);
        assert!(plan.test(&tuple![1], &local).holds());
        assert!(!plan.test(&tuple![2], &local).holds());
    }

    /// Ground truth: the compiled plan agrees with the Theorem 5.2
    /// containment test on an exhaustive grid of small workloads, for a
    /// battery of plan shapes (repeated vars, constants, shared remote
    /// vars, duplicate predicates).
    #[test]
    fn plan_agrees_with_theorem_5_2() {
        use crate::thm52::complete_local_test;
        use ccpi_arith::Solver;
        let shapes = [
            "panic :- l(X,Y) & r(X) & s(Y).",
            "panic :- l(X,X) & r(X).",
            "panic :- l(X,Y) & r(X,Z) & r(Y,Z).",
            "panic :- l(X,c) & r(X).",
            "panic :- l(X,Y) & r(X,W) & s(W).",
            "panic :- l(X,Y) & r(a,X).",
        ];
        // Small value domain: exhaustive relations of ≤ 2 tuples.
        let vals: Vec<Value> = vec![
            Value::int(1),
            Value::int(2),
            Value::str("c"),
            Value::str("a"),
        ];
        let mut pairs: Vec<Tuple> = Vec::new();
        for a in &vals {
            for b in &vals {
                pairs.push(Tuple::from(vec![a.clone(), b.clone()]));
            }
        }
        for shape in shapes {
            let c = cqc(shape);
            let plan = compile_ra(&c).unwrap();
            // Relations: empty, singletons, and a few pairs.
            let mut relations: Vec<Relation> = vec![Relation::new(2)];
            for p in &pairs {
                relations.push(Relation::from_tuples(2, [p.clone()]));
            }
            for (i, p) in pairs.iter().enumerate().step_by(3) {
                let q = &pairs[(i + 5) % pairs.len()];
                relations.push(Relation::from_tuples(2, [p.clone(), q.clone()]));
            }
            for local in &relations {
                for t in pairs.iter() {
                    let by_plan = plan.test(t, local).holds();
                    let by_thm52 = complete_local_test(&c, t, local, Solver::dense()).holds();
                    assert_eq!(
                        by_plan, by_thm52,
                        "{shape} insert {t} into {local:?}\nplan: {plan}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_display_is_informative() {
        let plan = compile_ra(&cqc("panic :- l(X,Y,Y) & r(Y,Z,X).")).unwrap();
        let s = plan.to_string();
        assert!(s.contains("σ["));
        assert!(s.contains("#2 = #3"));
    }

    #[test]
    fn compile_is_data_independent() {
        // The same plan object serves any relation contents — compile
        // once, test many (this is the claim the ra_compile bench times).
        let plan = compile_ra(&cqc("panic :- l(X,Y) & r(X) & s(Y).")).unwrap();
        for n in [0i64, 10, 100] {
            let local = Relation::from_tuples(2, (0..n).map(|k| tuple![k, k + 1]));
            let _ = plan.test(&tuple![5, 6], &local);
        }
    }
}
