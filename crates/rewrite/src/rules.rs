//! Construction of the post-update constraint `C′` (§4).
//!
//! `C′` holds on the database *before* the update iff `C` holds *after* it.
//! Three construction styles are provided, matching the paper's toolbox:
//!
//! * [`RewriteStyle::Auxiliary`] — Example 4.1 / 4.2: define `p1` that
//!   denotes the post-update relation and substitute it for `p`. For
//!   insertions `p1` needs only pure rules (`p1(X̄) :- p(X̄).  p1(t̄).`);
//!   for deletions the defining rules carry `<>` comparisons
//!   (`emp1(E,D,S) :- emp(E,D,S) & E <> jones.` …).
//! * [`RewriteStyle::AuxiliaryNegation`] — Example 4.2's second trick:
//!   deletions expressed with negated membership tests (`not isJones(E)`)
//!   instead of `<>`, for classes that have negation but no arithmetic.
//! * [`RewriteStyle::Inline`] — no auxiliary predicates: occurrences of
//!   `p` are expanded in place (a positive occurrence of an inserted tuple
//!   becomes a choice "matches the old relation ∨ equals `t`"; a negated
//!   occurrence picks up disequalities, Example 4.1's
//!   `panic :- emp(E,D,S) & not dept(D) & D <> toy`). Produces a union of
//!   CQs in the general case — Theorem 4.1 proves no single-CQ form exists.

use ccpi_ir::class::{classify, ConstraintClass};
use ccpi_ir::{Atom, CompOp, Comparison, Constraint, IrError, Literal, Program, Rule, Sym, Term};
use ccpi_storage::{Tuple, Update};
use std::collections::BTreeSet;
use std::fmt;

/// How to express the post-update constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteStyle {
    /// Auxiliary predicate; deletions use `<>` comparisons.
    Auxiliary,
    /// Auxiliary predicate; deletions use negated membership helpers.
    AuxiliaryNegation,
    /// In-place expansion into a union of rules (no auxiliary predicate).
    Inline,
}

/// The result of rewriting a constraint for an update.
#[derive(Clone, Debug)]
pub struct RewrittenConstraint {
    /// The post-update constraint `C′`.
    pub constraint: Constraint,
    /// Class of the input constraint (Fig. 2.1).
    pub class_before: ConstraintClass,
    /// Class of `C′`.
    pub class_after: ConstraintClass,
    /// The style used.
    pub style: RewriteStyle,
}

/// Errors from rewriting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The update's arity does not match the predicate's use in `C`.
    ArityMismatch {
        /// The updated predicate.
        pred: Sym,
        /// Arity inferred from the constraint.
        expected: usize,
        /// The update tuple's arity.
        got: usize,
    },
    /// Inline expansion exceeded the rule budget.
    TooManyRules(usize),
    /// IR-level validation failure when assembling `C′`.
    Ir(IrError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::ArityMismatch { pred, expected, got } => write!(
                f,
                "update tuple arity {got} does not match `{pred}`'s arity {expected} in the constraint"
            ),
            RewriteError::TooManyRules(n) => {
                write!(f, "inline rewrite produced more than {n} rules")
            }
            RewriteError::Ir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<IrError> for RewriteError {
    fn from(e: IrError) -> Self {
        RewriteError::Ir(e)
    }
}

/// Hard cap on inline-expansion output size.
pub const MAX_REWRITE_RULES: usize = 4096;

/// Builds `C′` for `update` in the requested style.
///
/// If the updated predicate does not occur in the constraint, `C′ = C`
/// (the constraint is trivially independent of the update).
pub fn rewrite(
    c: &Constraint,
    update: &Update,
    style: RewriteStyle,
) -> Result<RewrittenConstraint, RewriteError> {
    let class_before = classify(c.program());
    let pred = update.pred();
    let tuple = update.tuple();

    // Check the predicate's arity as used in the constraint.
    let sig = c.program().signature()?;
    if let Some(&arity) = sig.get(pred.as_str()) {
        if arity != tuple.arity() {
            return Err(RewriteError::ArityMismatch {
                pred: pred.clone(),
                expected: arity,
                got: tuple.arity(),
            });
        }
    } else {
        // Predicate not mentioned: C is unaffected.
        return Ok(RewrittenConstraint {
            constraint: c.clone(),
            class_before,
            class_after: class_before,
            style,
        });
    }

    let program = match (style, update) {
        (RewriteStyle::Auxiliary, Update::Insert { .. }) => {
            auxiliary_insert(c.program(), pred, tuple)
        }
        (RewriteStyle::AuxiliaryNegation, Update::Insert { .. }) => {
            auxiliary_insert(c.program(), pred, tuple)
        }
        (RewriteStyle::Auxiliary, Update::Delete { .. }) => {
            auxiliary_delete_arith(c.program(), pred, tuple)
        }
        (RewriteStyle::AuxiliaryNegation, Update::Delete { .. }) => {
            auxiliary_delete_neg(c.program(), pred, tuple)
        }
        (RewriteStyle::Inline, Update::Insert { .. }) => {
            inline_rewrite(c.program(), pred, tuple, true)?
        }
        (RewriteStyle::Inline, Update::Delete { .. }) => {
            inline_rewrite(c.program(), pred, tuple, false)?
        }
    };
    let constraint = Constraint::new(program)?;
    let class_after = classify(constraint.program());
    Ok(RewrittenConstraint {
        constraint,
        class_before,
        class_after,
        style,
    })
}

/// A name for the auxiliary predicate that does not collide with any
/// predicate of the program.
fn fresh_pred(program: &Program, base: &str) -> Sym {
    let used = program
        .signature()
        .map(|s| s.into_keys().collect::<BTreeSet<_>>());
    let used = used.unwrap_or_default();
    let mut name = format!("{base}1");
    let mut k = 1;
    while used.contains(name.as_str()) {
        k += 1;
        name = format!("{base}{k}");
    }
    Sym::new(name)
}

fn rename_occurrences(program: &Program, from: &Sym, to: &Sym) -> Vec<Rule> {
    let rename = |a: &Atom| -> Atom {
        if a.pred == *from {
            Atom {
                pred: to.clone(),
                args: a.args.clone(),
            }
        } else {
            a.clone()
        }
    };
    program
        .rules
        .iter()
        .map(|r| {
            Rule::new(
                // Heads never use the updated (EDB) predicate in valid
                // constraints; rename defensively anyway.
                rename(&r.head),
                r.body
                    .iter()
                    .map(|l| match l {
                        Literal::Pos(a) => Literal::Pos(rename(a)),
                        Literal::Neg(a) => Literal::Neg(rename(a)),
                        cmp => cmp.clone(),
                    })
                    .collect(),
            )
        })
        .collect()
}

fn generic_args(arity: usize) -> Vec<Term> {
    (0..arity)
        .map(|i| Term::Var(ccpi_ir::Var::new(format!("W{i}"))))
        .collect()
}

fn tuple_terms(t: &Tuple) -> Vec<Term> {
    t.iter().cloned().map(Term::Const).collect()
}

/// Example 4.1: `p1(X̄) :- p(X̄).  p1(t̄).` and substitute.
fn auxiliary_insert(program: &Program, pred: &Sym, t: &Tuple) -> Program {
    let p1 = fresh_pred(program, pred.as_str());
    let mut rules = vec![
        Rule::new(
            Atom {
                pred: p1.clone(),
                args: generic_args(t.arity()),
            },
            vec![Literal::Pos(Atom {
                pred: pred.clone(),
                args: generic_args(t.arity()),
            })],
        ),
        Rule::fact(Atom {
            pred: p1.clone(),
            args: tuple_terms(t),
        }),
    ];
    rules.extend(rename_occurrences(program, pred, &p1));
    Program::new(rules)
}

/// Example 4.2: one defining rule per component with a `<>` comparison.
fn auxiliary_delete_arith(program: &Program, pred: &Sym, t: &Tuple) -> Program {
    let p1 = fresh_pred(program, pred.as_str());
    let args = generic_args(t.arity());
    let mut rules: Vec<Rule> = (0..t.arity())
        .map(|i| {
            Rule::new(
                Atom {
                    pred: p1.clone(),
                    args: args.clone(),
                },
                vec![
                    Literal::Pos(Atom {
                        pred: pred.clone(),
                        args: args.clone(),
                    }),
                    Literal::Cmp(Comparison::new(
                        args[i].clone(),
                        CompOp::Ne,
                        Term::Const(t[i].clone()),
                    )),
                ],
            )
        })
        .collect();
    rules.extend(rename_occurrences(program, pred, &p1));
    Program::new(rules)
}

/// Example 4.2's `isJones` variant: negated membership helpers instead of
/// `<>` comparisons.
fn auxiliary_delete_neg(program: &Program, pred: &Sym, t: &Tuple) -> Program {
    let p1 = fresh_pred(program, pred.as_str());
    let args = generic_args(t.arity());
    let mut rules = Vec::new();
    for i in 0..t.arity() {
        let helper = Sym::new(format!("{p1}_is{i}"));
        rules.push(Rule::new(
            Atom {
                pred: p1.clone(),
                args: args.clone(),
            },
            vec![
                Literal::Pos(Atom {
                    pred: pred.clone(),
                    args: args.clone(),
                }),
                Literal::Neg(Atom {
                    pred: helper.clone(),
                    args: vec![args[i].clone()],
                }),
            ],
        ));
        rules.push(Rule::fact(Atom {
            pred: helper,
            args: vec![Term::Const(t[i].clone())],
        }));
    }
    rules.extend(rename_occurrences(program, pred, &p1));
    Program::new(rules)
}

/// In-place expansion; `insert = true` for insertions.
fn inline_rewrite(
    program: &Program,
    pred: &Sym,
    t: &Tuple,
    insert: bool,
) -> Result<Program, RewriteError> {
    let mut rules: Vec<Rule> = Vec::new();
    for rule in &program.rules {
        expand_rule(rule, pred, t, insert, &mut rules)?;
        if rules.len() > MAX_REWRITE_RULES {
            return Err(RewriteError::TooManyRules(MAX_REWRITE_RULES));
        }
    }
    Ok(Program::new(rules))
}

/// Expands one rule into the disjunction of its post-update variants.
///
/// Literals are processed left to right; the processed prefix (`done`) is
/// final and never re-expanded (kept occurrences of the updated predicate
/// denote the *old* relation). When a unification with the update tuple
/// occurs, the substitution is applied to the head, to `done` (which stays
/// final), and to the unprocessed suffix (which continues to expand).
fn expand_rule(
    rule: &Rule,
    pred: &Sym,
    t: &Tuple,
    insert: bool,
    out: &mut Vec<Rule>,
) -> Result<(), RewriteError> {
    // Work queue of partial expansions: (head, done, remaining).
    let mut queue: Vec<(Atom, Vec<Literal>, Vec<Literal>)> =
        vec![(rule.head.clone(), Vec::new(), rule.body.clone())];
    while let Some((head, done, mut rest)) = queue.pop() {
        let Some(lit) = rest.first().cloned() else {
            out.push(Rule::new(head, done));
            if out.len() > MAX_REWRITE_RULES {
                return Err(RewriteError::TooManyRules(MAX_REWRITE_RULES));
            }
            continue;
        };
        rest.remove(0);
        match (&lit, insert) {
            // Positive occurrence of the inserted predicate:
            // p_new(a) = p(a) OR a = t.
            (Literal::Pos(a), true) if a.pred == *pred => {
                // Variant 1: matches the old relation.
                let mut d1 = done.clone();
                d1.push(lit.clone());
                queue.push((head.clone(), d1, rest.clone()));
                // Variant 2: equals the inserted tuple.
                if let Some(mgu) = ccpi_containment::unfold::unify_atoms(
                    a,
                    &Atom {
                        pred: pred.clone(),
                        args: tuple_terms(t),
                    },
                ) {
                    let d2 = done.iter().map(|l| mgu.apply_literal(l)).collect();
                    let r2 = rest.iter().map(|l| mgu.apply_literal(l)).collect();
                    queue.push((mgu.apply_atom(&head), d2, r2));
                }
            }
            // Positive occurrence of the deleted predicate:
            // p_new(a) = p(a) AND a != t.
            (Literal::Pos(a), false) if a.pred == *pred => {
                if static_mismatch(a, t).is_some() {
                    // A constant already differs from t: a != t always holds.
                    let mut d = done.clone();
                    d.push(lit.clone());
                    queue.push((head.clone(), d, rest.clone()));
                } else {
                    for (i, arg) in a.args.iter().enumerate() {
                        if arg.is_var() {
                            let mut d = done.clone();
                            d.push(lit.clone());
                            d.push(Literal::Cmp(Comparison::new(
                                arg.clone(),
                                CompOp::Ne,
                                Term::Const(t[i].clone()),
                            )));
                            queue.push((head.clone(), d, rest.clone()));
                        }
                        // Constant equal to t[i]: that disjunct is false.
                    }
                }
            }
            // Negated occurrence, insertion:
            // not p_new(a) = not p(a) AND a != t.
            (Literal::Neg(a), true) if a.pred == *pred => {
                if static_mismatch(a, t).is_some() {
                    let mut d = done.clone();
                    d.push(lit.clone());
                    queue.push((head.clone(), d, rest.clone()));
                } else {
                    for (i, arg) in a.args.iter().enumerate() {
                        if arg.is_var() {
                            let mut d = done.clone();
                            d.push(lit.clone());
                            d.push(Literal::Cmp(Comparison::new(
                                arg.clone(),
                                CompOp::Ne,
                                Term::Const(t[i].clone()),
                            )));
                            queue.push((head.clone(), d, rest.clone()));
                        }
                    }
                }
            }
            // Negated occurrence, deletion:
            // not p_new(a) = not p(a) OR a = t.
            (Literal::Neg(a), false) if a.pred == *pred => {
                let mut d1 = done.clone();
                d1.push(lit.clone());
                queue.push((head.clone(), d1, rest.clone()));
                if let Some(mgu) = ccpi_containment::unfold::unify_atoms(
                    a,
                    &Atom {
                        pred: pred.clone(),
                        args: tuple_terms(t),
                    },
                ) {
                    let d2 = done.iter().map(|l| mgu.apply_literal(l)).collect();
                    let r2 = rest.iter().map(|l| mgu.apply_literal(l)).collect();
                    queue.push((mgu.apply_atom(&head), d2, r2));
                }
            }
            _ => {
                let mut d = done.clone();
                d.push(lit.clone());
                queue.push((head.clone(), d, rest.clone()));
            }
        }
        if out.len() + queue.len() > MAX_REWRITE_RULES {
            return Err(RewriteError::TooManyRules(MAX_REWRITE_RULES));
        }
    }
    Ok(())
}

fn static_mismatch(a: &Atom, t: &Tuple) -> Option<usize> {
    a.args.iter().enumerate().find_map(|(i, arg)| match arg {
        Term::Const(c) if *c != t[i] => Some(i),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_datalog::constraint_violated;
    use ccpi_parser::parse_constraint;
    use ccpi_storage::{tuple, Database, Locality};
    use proptest::prelude::*;

    fn c(src: &str) -> Constraint {
        parse_constraint(src).unwrap()
    }

    /// Example 4.1: insertion of `toy` into `dept`, auxiliary style.
    #[test]
    fn example_4_1_auxiliary_form() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::insert("dept", tuple!["toy"]);
        let r = rewrite(&c1, &upd, RewriteStyle::Auxiliary).unwrap();
        assert_eq!(
            r.constraint.to_string(),
            "dept1(W0) :- dept(W0).\ndept1(toy).\npanic :- emp(E,D,S) & not dept1(D)."
        );
        use ccpi_ir::class::LangShape;
        assert_eq!(r.class_before.shape, LangShape::SingleCq);
        assert_eq!(r.class_after.shape, LangShape::UnionCq);
    }

    /// Example 4.1's single-rule form: `D <> toy` via inline style.
    #[test]
    fn example_4_1_inline_form() {
        let c1 = c("panic :- emp(E,D,S) & not dept(D).");
        let upd = Update::insert("dept", tuple!["toy"]);
        let r = rewrite(&c1, &upd, RewriteStyle::Inline).unwrap();
        assert_eq!(
            r.constraint.to_string(),
            "panic :- emp(E,D,S) & not dept(D) & D <> toy."
        );
        // Stays a single CQ, gaining arithmetic (the paper's point).
        use ccpi_ir::class::LangShape;
        assert_eq!(r.class_after.shape, LangShape::SingleCq);
        assert!(r.class_after.arithmetic);
    }

    /// Example 4.2: deletion of (jones,shoe,50), arithmetic auxiliary.
    #[test]
    fn example_4_2_arithmetic_form() {
        let c2 = c("panic :- emp(E,D,S) & S > 100.");
        let upd = Update::delete("emp", tuple!["jones", "shoe", 50]);
        let r = rewrite(&c2, &upd, RewriteStyle::Auxiliary).unwrap();
        let text = r.constraint.to_string();
        assert!(text.contains("emp1(W0,W1,W2) :- emp(W0,W1,W2) & W0 <> jones."));
        assert!(text.contains("emp1(W0,W1,W2) :- emp(W0,W1,W2) & W1 <> shoe."));
        assert!(text.contains("emp1(W0,W1,W2) :- emp(W0,W1,W2) & W2 <> 50."));
        assert!(text.contains("panic :- emp1(E,D,S) & S > 100."));
    }

    /// Example 4.2's negated variant (the `isJones` trick).
    #[test]
    fn example_4_2_negation_form() {
        let c2 = c("panic :- emp(E,D,S) & S > 100.");
        let upd = Update::delete("emp", tuple!["jones", "shoe", 50]);
        let r = rewrite(&c2, &upd, RewriteStyle::AuxiliaryNegation).unwrap();
        let text = r.constraint.to_string();
        assert!(text.contains("not emp1_is0(W0)"));
        assert!(text.contains("emp1_is0(jones)."));
        assert!(!r.class_after.arithmetic || r.class_before.arithmetic);
        assert!(r.class_after.negation);
    }

    #[test]
    fn unaffected_constraint_is_unchanged() {
        let c1 = c("panic :- emp(E,sales) & emp(E,accounting).");
        let upd = Update::insert("dept", tuple!["toy"]);
        let r = rewrite(&c1, &upd, RewriteStyle::Inline).unwrap();
        assert_eq!(r.constraint, c1);
        assert_eq!(r.class_before, r.class_after);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let c1 = c("panic :- dept(D) & dept(D).");
        let upd = Update::insert("dept", tuple!["toy", "extra"]);
        assert!(matches!(
            rewrite(&c1, &upd, RewriteStyle::Auxiliary),
            Err(RewriteError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn inline_insert_positive_occurrence_expands() {
        let c1 = c("panic :- emp(E,sales) & emp(E,accounting).");
        let upd = Update::insert("emp", tuple!["meyer", "sales"]);
        let r = rewrite(&c1, &upd, RewriteStyle::Inline).unwrap();
        // Variants: (old,old), (t,old with E=meyer), (old,t fails: sales<>accounting)
        // (t,t fails).
        let text = r.constraint.to_string();
        assert!(text.contains("panic :- emp(E,sales) & emp(E,accounting)."));
        assert!(text.contains("panic :- emp(meyer,accounting)."));
        assert_eq!(r.constraint.program().rules.len(), 2);
    }

    /// Semantics check harness: C'(D) == C(D after update), on a matrix of
    /// small databases.
    fn check_equivalence(c_src: &str, upd: &Update, style: RewriteStyle, dbs: &[Database]) {
        let c0 = c(c_src);
        let r = rewrite(&c0, upd, style).unwrap();
        for db in dbs {
            let mut after = db.clone();
            after.apply(upd).unwrap();
            let lhs = constraint_violated(&r.constraint, db).unwrap();
            let rhs = constraint_violated(&c0, &after).unwrap();
            assert_eq!(
                lhs, rhs,
                "style {style:?}: C'({db:?}) = {lhs} but C(after) = {rhs} for {upd}"
            );
        }
    }

    fn emp_dept_dbs() -> Vec<Database> {
        // A small matrix of databases over emp/2 and dept/1.
        let emps = [
            vec![],
            vec![("jones", "shoe")],
            vec![("jones", "toy")],
            vec![("jones", "shoe"), ("smith", "toy")],
            vec![("meyer", "sales"), ("meyer", "accounting")],
        ];
        let depts = [vec![], vec!["shoe"], vec!["toy"], vec!["shoe", "toy"]];
        let mut out = Vec::new();
        for es in &emps {
            for ds in &depts {
                let mut db = Database::new();
                db.declare("emp", 2, Locality::Local).unwrap();
                db.declare("dept", 1, Locality::Remote).unwrap();
                for (e, d) in es {
                    db.insert("emp", tuple![*e, *d]).unwrap();
                }
                for d in ds {
                    db.insert("dept", tuple![*d]).unwrap();
                }
                out.push(db);
            }
        }
        out
    }

    #[test]
    fn all_styles_preserve_semantics_on_referential_integrity() {
        let dbs = emp_dept_dbs();
        let updates = [
            Update::insert("dept", tuple!["toy"]),
            Update::delete("dept", tuple!["toy"]),
            Update::insert("emp", tuple!["jones", "toy"]),
            Update::delete("emp", tuple!["jones", "shoe"]),
        ];
        for upd in &updates {
            for style in [
                RewriteStyle::Auxiliary,
                RewriteStyle::AuxiliaryNegation,
                RewriteStyle::Inline,
            ] {
                check_equivalence("panic :- emp(E,D) & not dept(D).", upd, style, &dbs);
            }
        }
    }

    #[test]
    fn styles_preserve_semantics_with_constants_in_subgoals() {
        let dbs = emp_dept_dbs();
        let updates = [
            Update::insert("emp", tuple!["meyer", "sales"]),
            Update::delete("emp", tuple!["meyer", "sales"]),
            Update::insert("emp", tuple!["meyer", "accounting"]),
        ];
        for upd in &updates {
            for style in [
                RewriteStyle::Auxiliary,
                RewriteStyle::AuxiliaryNegation,
                RewriteStyle::Inline,
            ] {
                check_equivalence(
                    "panic :- emp(E,sales) & emp(E,accounting).",
                    upd,
                    style,
                    &dbs,
                );
            }
        }
    }

    // Random databases + random updates: every style is semantics-
    // preserving on a constraint with repeated variables and comparisons.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn rewrite_equivalence_random(
            emps in prop::collection::btree_set(((0i64..3), (0i64..3)), 0..6),
            depts in prop::collection::btree_set(0i64..3, 0..3),
            upd_pred in 0usize..2,
            a in 0i64..3,
            b in 0i64..3,
            is_insert in any::<bool>(),
        ) {
            let mut db = Database::new();
            db.declare("emp", 2, Locality::Local).unwrap();
            db.declare("dept", 1, Locality::Remote).unwrap();
            for (e, d) in &emps {
                db.insert("emp", tuple![*e, *d]).unwrap();
            }
            for d in &depts {
                db.insert("dept", tuple![*d]).unwrap();
            }
            let upd = match (upd_pred, is_insert) {
                (0, true) => Update::insert("emp", tuple![a, b]),
                (0, false) => Update::delete("emp", tuple![a, b]),
                (_, true) => Update::insert("dept", tuple![a]),
                (_, false) => Update::delete("dept", tuple![a]),
            };
            let src = "panic :- emp(E,D) & not dept(D) & E <> 0.";
            let c0 = c(src);
            let mut after = db.clone();
            after.apply(&upd).unwrap();
            let expected = constraint_violated(&c0, &after).unwrap();
            for style in [RewriteStyle::Auxiliary, RewriteStyle::AuxiliaryNegation, RewriteStyle::Inline] {
                let r = rewrite(&c0, &upd, style).unwrap();
                let got = constraint_violated(&r.constraint, &db).unwrap();
                prop_assert_eq!(got, expected, "style {:?} upd {}", style, upd);
            }
        }
    }
}
