//! §2's active-database reading: rules "if C holds, perform A", with the
//! §4 independence test pruning condition evaluations.
//!
//! Run with: `cargo run --example active_rules`

use ccpi_suite::core::active::{ActiveRule, ActiveRuleSet};
use ccpi_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.declare("stock", 2, Locality::Local)?;
    db.declare("order_q", 3, Locality::Local)?;
    db.declare("supplier", 2, Locality::Local)?;

    let mut rules = ActiveRuleSet::new();
    rules.add(ActiveRule::new(
        "low-stock",
        "panic :- stock(Item,Qty) & Qty < 10.",
        "place-reorder",
    )?);
    rules.add(ActiveRule::new(
        "big-order",
        "panic :- order_q(Id,Item,Qty) & Qty > 1000.",
        "route-to-approval",
    )?);
    rules.add(ActiveRule::new(
        "unsourced-item",
        "panic :- stock(Item,Qty) & not supplier(Item,S2).",
        "find-supplier",
    )?);

    db.insert("supplier", tuple!["bolts", "acme"])?;
    db.insert("supplier", tuple!["nuts", "acme"])?;

    let updates = [
        Update::insert("stock", tuple!["bolts", 500]),
        Update::insert("stock", tuple!["nuts", 3]),
        Update::insert("order_q", tuple![1, "bolts", 200]),
        Update::insert("order_q", tuple![2, "nuts", 5000]),
        Update::insert("stock", tuple!["washers", 50]),
    ];

    let mut total_avoided = 0usize;
    for update in &updates {
        // `quiescent = true`: the demo drains all actions between updates.
        let reaction = rules.react(&mut db, update, true)?;
        total_avoided += reaction.evaluations_avoided;
        println!("update {update}:");
        if reaction.fired.is_empty() {
            println!(
                "  no rules fired ({} evaluations avoided)",
                reaction.evaluations_avoided
            );
        }
        for (rule, action) in &reaction.fired {
            println!("  rule `{rule}` fired -> {action}");
        }
    }
    println!(
        "\n{} of {} condition evaluations avoided by the independence test",
        total_avoided,
        updates.len() * rules.len()
    );
    Ok(())
}
