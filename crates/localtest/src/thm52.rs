//! **Theorem 5.2** — the complete local test via reductions.
//!
//! > Let `C` be a CQC and let `t` be a tuple inserted into the local
//! > relation `L` for predicate `l`. Assume `C` holds before the update.
//! > Then the complete local test for guaranteeing that `C` holds after
//! > the update is whether `RED(t,l,C) ⊆ ⋃_{s∈L} RED(s,l,C)`.
//!
//! The containment on the right is decided exactly by Theorem 5.1's union
//! test. Because CQCs have arithmetic, containment in the union may hold
//! without containment in any single member (Example 5.3: `RED((4,8)) ⊆
//! RED((3,6)) ∪ RED((5,10))`) — "the reason that the results of Gupta and
//! Ullman \[1992\] or Gupta and Widom \[1993\] cannot be extended to allow
//! arithmetic comparisons".
//!
//! The multi-constraint extension ("Theorem 5.2 extends to the case where
//! several constraints are assumed to hold prior to the update. We then
//! add to the union on the right the reductions of the other constraints
//! by all tuples in L") is [`complete_local_test_with`].

use crate::cqc::Cqc;
use ccpi_arith::Solver;
use ccpi_containment::thm51::PreparedUnion;
use ccpi_ir::{Cq, IrError};
use ccpi_storage::{Relation, Tuple};

/// The verdict of a complete local test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalTestResult {
    /// The constraint is guaranteed to hold after the insertion.
    Holds,
    /// Inconclusive: some remote state would make the constraint fail —
    /// a remote check is required (the test is *complete*, so this is not
    /// conservatism).
    Unknown,
}

impl LocalTestResult {
    /// `true` for [`LocalTestResult::Holds`].
    pub fn holds(self) -> bool {
        matches!(self, LocalTestResult::Holds)
    }
}

/// The Theorem 5.2 complete local test for inserting `t` into the local
/// relation `local` (which must hold the **pre-insertion** state).
pub fn complete_local_test(
    cqc: &Cqc,
    t: &Tuple,
    local: &Relation,
    solver: Solver,
) -> LocalTestResult {
    complete_local_test_with(cqc, t, local, &[], solver)
}

/// Theorem 5.2 with extra reductions from other held constraints added to
/// the union (their reductions must be computed against the same local
/// relation; see `ccpi::ConstraintManager` for the plumbing).
pub fn complete_local_test_with(
    cqc: &Cqc,
    t: &Tuple,
    local: &Relation,
    extra_reductions: &[Cq],
    solver: Solver,
) -> LocalTestResult {
    let Some(red_t) = cqc.red(t) else {
        // Example 5.4: no reduction — the insertion cannot violate C.
        return LocalTestResult::Holds;
    };
    let decide = || -> Result<bool, IrError> {
        let mut union = prepare_union(cqc, &red_t, local)?;
        for r in extra_reductions {
            union.add_member(r)?;
        }
        union.contains(&red_t, solver)
    };
    match decide() {
        Ok(true) => LocalTestResult::Holds,
        Ok(false) => LocalTestResult::Unknown,
        // Validation failures cannot happen for a validated CQC; be
        // conservative if they somehow do.
        Err(_) => LocalTestResult::Unknown,
    }
}

/// Prepares the Theorem 5.2 union `⋃_{s∈L} RED(s,l,C)` for probing with
/// reductions of insertions into `local`. `shape_of` is any representative
/// reduction of `cqc` (reductions of a fixed CQC all share one rectified
/// shape, which is what makes the prepared union reusable across probes).
///
/// Callers that keep the result alongside the relation (see
/// `ccpi::ConstraintManager`) can extend it with
/// [`PreparedUnion::add_member`] as tuples are inserted instead of
/// re-preparing per check.
pub fn prepare_union(cqc: &Cqc, shape_of: &Cq, local: &Relation) -> Result<PreparedUnion, IrError> {
    let mut union = PreparedUnion::new(shape_of)?;
    extend_union(&mut union, cqc, local)?;
    Ok(union)
}

/// Adds `RED(s,l,C)` for every `s` in `local` to an existing prepared
/// union — Theorem 5.2's multi-constraint extension adds *other* held
/// constraints' reductions this way.
pub fn extend_union(union: &mut PreparedUnion, cqc: &Cqc, local: &Relation) -> Result<(), IrError> {
    for s in local.iter() {
        if let Some(r) = cqc.red(s) {
            union.add_member(&r)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_cq;
    use ccpi_storage::tuple;

    fn forbidden() -> Cqc {
        let cq = parse_cq("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").unwrap();
        Cqc::with_local(cq, "l").unwrap()
    }

    fn rel(tuples: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(2, tuples.iter().map(|&(a, b)| tuple![a, b]))
    }

    /// Example 5.3: with (3,6) and (5,10) in L, inserting (4,8) is safe.
    #[test]
    fn example_5_3_safe_insertion() {
        let c = forbidden();
        let local = rel(&[(3, 6), (5, 10)]);
        assert!(complete_local_test(&c, &tuple![4, 8], &local, Solver::dense()).holds());
    }

    /// …but inserting (2,8) is not (the point 2 < 3 is uncovered), and
    /// neither is (4,11).
    #[test]
    fn example_5_3_unsafe_insertions() {
        let c = forbidden();
        let local = rel(&[(3, 6), (5, 10)]);
        assert!(!complete_local_test(&c, &tuple![2, 8], &local, Solver::dense()).holds());
        assert!(!complete_local_test(&c, &tuple![4, 11], &local, Solver::dense()).holds());
    }

    /// A gap between the existing intervals (dense domain) is fatal even
    /// when both endpoints are covered.
    #[test]
    fn gap_in_cover_is_detected() {
        let c = forbidden();
        let local = rel(&[(3, 5), (7, 10)]);
        assert!(!complete_local_test(&c, &tuple![4, 8], &local, Solver::dense()).holds());
        // Over the integers, though, [4,8] ⊆ [3,5] ∪ [6,10]:
        let local2 = rel(&[(3, 5), (6, 10)]);
        assert!(complete_local_test(&c, &tuple![4, 8], &local2, Solver::integer()).holds());
        assert!(!complete_local_test(&c, &tuple![4, 8], &local2, Solver::dense()).holds());
    }

    #[test]
    fn empty_local_relation_only_covers_degenerate_inserts() {
        let c = forbidden();
        let empty = Relation::new(2);
        // [5,4] is an empty interval — its reduction has unsatisfiable
        // arithmetic, so it is contained in the empty union.
        assert!(complete_local_test(&c, &tuple![5, 4], &empty, Solver::dense()).holds());
        // A real interval is not.
        assert!(!complete_local_test(&c, &tuple![4, 5], &empty, Solver::dense()).holds());
    }

    #[test]
    fn duplicate_insertion_is_always_safe() {
        let c = forbidden();
        let local = rel(&[(3, 6)]);
        assert!(complete_local_test(&c, &tuple![3, 6], &local, Solver::dense()).holds());
    }

    /// Example 5.4: an insertion whose reduction does not exist is safe.
    #[test]
    fn example_5_4_no_reduction_is_safe() {
        let cq = parse_cq("panic :- l(X,Y,Y) & r(Y,Z,X).").unwrap();
        let c = Cqc::with_local(cq, "l").unwrap();
        let local = Relation::new(3);
        assert!(complete_local_test(&c, &tuple!["a", "b", "c"], &local, Solver::dense()).holds());
        // With the reduction existing, only an exact duplicate covers it.
        let mut local = Relation::new(3);
        local.insert(tuple!["a", "b", "b"]);
        assert!(complete_local_test(&c, &tuple!["a", "b", "b"], &local, Solver::dense()).holds());
        assert!(!complete_local_test(&c, &tuple!["a", "c", "c"], &local, Solver::dense()).holds());
    }

    /// Multi-constraint extension: another constraint's reductions join
    /// the union.
    #[test]
    fn extra_reductions_strengthen_the_test() {
        let c = forbidden();
        let local = rel(&[(3, 6)]);
        // Alone, (5,8) is not covered.
        assert!(!complete_local_test(&c, &tuple![5, 8], &local, Solver::dense()).holds());
        // Suppose another held constraint forbids r-points in [5,10]
        // outright (its reduction is data-independent here).
        let other = parse_cq("panic :- r(Z) & 5 <= Z & Z <= 10.").unwrap();
        assert!(
            complete_local_test_with(&c, &tuple![5, 8], &local, &[other], Solver::dense()).holds()
        );
    }

    /// Ground-truth cross-check: when the local test says Holds, no remote
    /// relation state can make the constraint violated after the insert
    /// (checked over a grid of small remote states); when it says Unknown,
    /// some state does.
    #[test]
    fn completeness_against_brute_force_remote_states() {
        use ccpi_datalog::constraint_violated;
        use ccpi_ir::Constraint;
        use ccpi_storage::{Database, Locality};

        let c = forbidden();
        let constraint = Constraint::single(c.cq().to_rule()).unwrap();
        let locals: Vec<Vec<(i64, i64)>> = vec![
            vec![],
            vec![(3, 6)],
            vec![(3, 6), (5, 10)],
            vec![(3, 5), (7, 9)],
        ];
        let inserts = [(4i64, 8i64), (3, 6), (6, 9), (1, 2), (5, 5)];
        // Candidate remote points: enough to witness any uncovered gap in
        // this small integer workspace, including midpoints (dense check
        // needs rationals; integer solver matches this integral grid).
        let remote_points: Vec<i64> = (0..=12).collect();

        for l in &locals {
            let local_rel = rel(l);
            for &(a, b) in &inserts {
                let verdict = complete_local_test(&c, &tuple![a, b], &local_rel, Solver::integer());
                // Brute force: does some remote state violate C after the
                // insert, given C held before? Single-point states suffice
                // (the constraint is monotone in r).
                let mut witness = false;
                for &z in &remote_points {
                    let mut db = Database::new();
                    db.declare("l", 2, Locality::Local).unwrap();
                    db.declare("r", 1, Locality::Remote).unwrap();
                    for &(x, y) in l {
                        db.insert("l", tuple![x, y]).unwrap();
                    }
                    db.insert("r", tuple![z]).unwrap();
                    let before = constraint_violated(&constraint, &db).unwrap();
                    if before {
                        continue; // C must hold before the update
                    }
                    db.insert("l", tuple![a, b]).unwrap();
                    if constraint_violated(&constraint, &db).unwrap() {
                        witness = true;
                        break;
                    }
                }
                assert_eq!(
                    verdict.holds(),
                    !witness,
                    "insert ({a},{b}) into {l:?}: local test vs brute force"
                );
            }
        }
    }
}
