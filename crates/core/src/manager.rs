//! The constraint manager and its checking pipeline.

use crate::pipeline::{Applicability, PlanShape, StageId, StagePipeline};
use crate::remote::RemoteSource;
use crate::report::{
    CheckReport, LocalTestKind, Method, Outcome, Stage4Kind, StageTimes, UnknownCause,
};
use ccpi_arith::Solver;
use ccpi_containment::subsume::subsumes;
use ccpi_containment::thm51::PreparedUnion;
use ccpi_datalog::{DatalogError, DeltaPlanSet, Engine};
use ccpi_ir::class::{classify, ConstraintClass};
use ccpi_ir::{Constraint, Cq};
use ccpi_localtest::{compile_ra, extend_union, prepare_union, Cqc, IcqTest, LocalTestPlan};
use ccpi_parser::ParseError;
use ccpi_rewrite::independence::{independent_of_update, independent_of_update_rewrite};
use ccpi_rewrite::pretest::{PreTestSet, PreVerdict};
use ccpi_storage::{
    Database, DeltaSet, Locality, Relation, StorageError, TupleSnapshot, Update, UpdateTemplate,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Errors from manager operations.
#[derive(Debug)]
pub enum ManagerError {
    /// Constraint source failed to parse/validate.
    Parse(ParseError),
    /// The constraint program failed engine validation.
    Datalog(DatalogError),
    /// A storage-level problem (unknown relation, arity mismatch).
    Storage(StorageError),
    /// Duplicate constraint name.
    DuplicateName(String),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Parse(e) => write!(f, "{e}"),
            ManagerError::Datalog(e) => write!(f, "{e}"),
            ManagerError::Storage(e) => write!(f, "{e}"),
            ManagerError::DuplicateName(n) => write!(f, "constraint `{n}` already registered"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<ParseError> for ManagerError {
    fn from(e: ParseError) -> Self {
        ManagerError::Parse(e)
    }
}
impl From<DatalogError> for ManagerError {
    fn from(e: DatalogError) -> Self {
        ManagerError::Datalog(e)
    }
}
impl From<StorageError> for ManagerError {
    fn from(e: StorageError) -> Self {
        ManagerError::Storage(e)
    }
}

/// A registered constraint and its precompiled artifacts.
struct Registered {
    name: String,
    /// Canonical source text (re-parses to `constraint`); what a
    /// checkpoint persists so recovery can re-register and recompile.
    source: String,
    constraint: Constraint,
    class: ConstraintClass,
    engine: Engine,
    /// §5 form, when the constraint is a single CQC with one local subgoal.
    cqc: Option<Cqc>,
    /// Theorem 5.3 compiled plan (arithmetic-free CQCs).
    ra_plan: Option<LocalTestPlan>,
    /// Theorem 6.1 interval test (single-remote-variable ICQs).
    icq: Option<IcqTest>,
    /// §3: subsumed by the other registered constraints.
    subsumed: bool,
    /// Seeded delta plans plus the polarity analysis that decides, per
    /// update, whether stage 4 can run from the Δ alone. Compiled once at
    /// registration — the "static monotonicity analysis" of the delta path.
    delta: DeltaPlanSet,
    /// Compiled weakest-precondition pre-tests, one per update template
    /// (flat constraints only — empty otherwise).
    pretests: PreTestSet,
    /// The data-driven cheap-stage pipeline compiled from the pre-tests,
    /// the delta analysis and the locality declarations.
    pipeline: StagePipeline,
    /// Stage-3 cache: the Theorem 5.2 union (this constraint's reductions
    /// plus its siblings' over the shared local relation), prepared once
    /// per relation version and probed by every subsequent check. Interior
    /// mutability because checks take `&self`; under the parallel checker
    /// each scoped thread only ever touches its own constraint's slot.
    union_cache: Mutex<Option<UnionCache>>,
    /// Stage-4 verdict cache: the last full-check verdict with its
    /// validity key. Same interior-mutability discipline as `union_cache`.
    stage4_cache: Mutex<Option<Stage4Cache>>,
}

/// One prepared Theorem 5.2 union plus its validity token.
struct UnionCache {
    /// Pin of the local relation's tuple set at preparation time. Pointer
    /// equality against the live relation certifies the union still
    /// matches the data (any mutation is forced through copy-on-write
    /// while the pin is held, so stale hits are impossible).
    snapshot: TupleSnapshot,
    union: PreparedUnion,
}

/// Validity pins: one entry per relevant relation — a snapshot of its
/// tuple set, or `None` when the relation did not exist. All pins must
/// still match the live database (pointer equality) for the pinned value
/// to be reusable; every mutation path goes through copy-on-write, so a
/// stale hit is impossible.
type Pins = Vec<(String, Option<TupleSnapshot>)>;

/// One memoized stage-4 verdict: valid while the update value and every
/// relation the constraint reads are unchanged.
struct Stage4Cache {
    update: Update,
    pins: Pins,
    violated: bool,
    /// Remote tuples/bytes accounting captured with the verdict, so a hit
    /// reports the same costs the original computation did.
    tuples: usize,
    bytes: usize,
}

/// The memoized post-update snapshot shared by snapshot-path full checks:
/// keyed on the update value plus the database's monotone
/// [`Database::version`], so any committed mutation (applies, hydration,
/// bulk loads, new declarations) invalidates it automatically. The
/// version subsumes the per-relation pins an earlier revision kept here —
/// this memo pinned *every* relation, so one global counter is exactly
/// as precise and O(1) to compare. (The stage-3 union and stage-4 verdict
/// caches keep per-relation `TupleSnapshot` pins instead: they must
/// survive mutations to relations their constraint never reads, which a
/// global counter cannot express.)
struct PostSnapshot {
    update: Update,
    version: u64,
    after: Database,
}

/// What stage 4 concluded for one constraint, and how.
struct Stage4Result {
    outcome: Outcome,
    tuples: usize,
    bytes: usize,
    kind: Stage4Kind,
    /// Δ-tuples pushed through seeded plans (0 off the delta path).
    seeds: usize,
}

/// What the cheap stages concluded for one constraint, plus any reads
/// the settling stage performed — pre-test residuals may probe
/// remote-declared relations, and those reads are accounted exactly like
/// the full check's.
struct CheapOutcome {
    outcome: Outcome,
    tuples: usize,
    bytes: usize,
}

impl CheapOutcome {
    /// A conclusion that read nothing.
    fn free(outcome: Outcome) -> CheapOutcome {
        CheapOutcome {
            outcome,
            tuples: 0,
            bytes: 0,
        }
    }
}

/// Runs `f`, adding its wall-clock microseconds to `acc`.
fn timed<T>(acc: &mut f64, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let r = f();
    *acc += t0.elapsed().as_secs_f64() * 1e6;
    r
}

fn micros_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e6
}

/// Phase A of a parallel check: everything decidable without the
/// post-update snapshot.
enum PhaseA {
    /// The cheap stages settled it.
    Cheap(CheapOutcome),
    /// Stage 4 settled it via the verdict cache or the delta path.
    Settled(Stage4Result),
    /// Needs the shared post-update snapshot (phase B).
    NeedsSnapshot,
}

fn verdict_outcome(violated: bool) -> Outcome {
    if violated {
        Outcome::Violated
    } else {
        Outcome::Holds(Method::FullCheck)
    }
}

/// Folds one stage-4 result into a report, in escalation order.
fn push_stage4(report: &mut CheckReport, name: String, r: Stage4Result) {
    report.remote_tuples_read += r.tuples;
    report.remote_bytes_read += r.bytes;
    report.full_checks += 1;
    report.delta_tuples_joined += r.seeds;
    report.stage4_kinds.push((name.clone(), r.kind));
    report.outcomes.push((name, r.outcome));
}

/// The constraint manager: owns the database, registers constraints, and
/// walks the paper's escalation ladder on every update.
pub struct ConstraintManager {
    db: Database,
    solver: Solver,
    constraints: Vec<Registered>,
    /// `Some(v)` pins parallel checking on/off; `None` decides per call
    /// (more than one constraint, more than one core, no remote source).
    parallel_override: Option<bool>,
    /// `Some(false)` disables the stage-4 delta path (every escalation
    /// takes the snapshot fallback) — for A/B measurement and debugging.
    delta_override: Option<bool>,
    /// `Some(false)` disables the compiled pre-test pipeline (checks walk
    /// the legacy subsumption → independence → local-test ladder) — for
    /// A/B measurement; verdicts are identical.
    pretest_override: Option<bool>,
    /// Memoized post-update snapshot (see [`PostSnapshot`]); survives
    /// across checks so repeating an update never re-clones the database.
    post_memo: Option<PostSnapshot>,
    /// Lifetime count of snapshot (re)builds, for tests and diagnostics.
    post_rebuilds: usize,
}

impl ConstraintManager {
    /// Creates a manager over a database (whose catalog carries the
    /// local/remote split). Uses the dense-order solver, the paper's
    /// setting; see [`ConstraintManager::with_solver`].
    pub fn new(db: Database) -> Self {
        Self::with_solver(db, Solver::dense())
    }

    /// Creates a manager with an explicit solver domain (e.g.
    /// [`ccpi_arith::Domain::Integer`] for integer-typed schemas).
    pub fn with_solver(db: Database, solver: Solver) -> Self {
        ConstraintManager {
            db,
            solver,
            constraints: Vec::new(),
            parallel_override: None,
            delta_override: None,
            pretest_override: None,
            post_memo: None,
            post_rebuilds: 0,
        }
    }

    /// Pins the compiled pre-test pipeline on or off; `None` restores the
    /// default (on for every flat constraint). Disabling routes every
    /// check through the legacy fixed-order ladder — verdicts are
    /// identical either way; methods, read counters and timings differ.
    pub fn set_pretest_checking(&mut self, enabled: Option<bool>) {
        self.pretest_override = enabled;
    }

    /// Is the compiled pre-test pipeline active?
    fn pretest_wanted(&self) -> bool {
        self.pretest_override.unwrap_or(true)
    }

    /// The compiled plan shape for one (constraint, template) pair —
    /// `None` for unknown names and for non-flat constraints (which keep
    /// the legacy ladder). Inspection surface for benchmarks and tests.
    pub fn plan_shape(&self, name: &str, template: &UpdateTemplate) -> Option<PlanShape> {
        let reg = self.constraints.iter().find(|r| r.name == name)?;
        if !reg.pretests.compiled() {
            return None;
        }
        Some(reg.pipeline.plan(template).shape())
    }

    /// Pins the stage-4 delta path on or off; `None` restores the default
    /// (on whenever the registration-time analysis proves an update
    /// eligible). Disabling forces every escalation through the snapshot
    /// fallback — useful for A/B measurement; verdicts are identical.
    pub fn set_delta_checking(&mut self, enabled: Option<bool>) {
        self.delta_override = enabled;
    }

    /// Does this update take constraint `i`'s seeded delta path?
    fn delta_eligible(&self, i: usize, delta: &DeltaSet) -> bool {
        self.delta_override.unwrap_or(true) && self.constraints[i].delta.eligible(delta)
    }

    /// How many times the memoized post-update snapshot has been built
    /// over this manager's lifetime. Checking the same update twice
    /// against an unchanged database builds it at most once.
    pub fn post_snapshot_rebuilds(&self) -> usize {
        self.post_rebuilds
    }

    /// Pins parallel checking on or off; `None` restores the default
    /// (parallel when several constraints are registered and the host has
    /// more than one core). Checks through a remote source stay sequential
    /// regardless — their stage-4 hydration mutates shared state.
    pub fn set_parallel_checking(&mut self, enabled: Option<bool>) {
        self.parallel_override = enabled;
    }

    /// Read access to the database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Write access to the database (bulk loading).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Registers a constraint from source text.
    pub fn add_constraint(&mut self, name: &str, source: &str) -> Result<(), ManagerError> {
        let c = ccpi_parser::parse_constraint(source)?;
        self.add_with_source(name, c, source.to_string())
    }

    /// Registers an already-built constraint. The persisted form is the
    /// constraint's canonical rendering (it re-parses to the same
    /// program for everything the grammar can express), so a checkpoint
    /// of this manager can re-register it at recovery.
    pub fn add(&mut self, name: &str, constraint: Constraint) -> Result<(), ManagerError> {
        let source = constraint.to_string();
        self.add_with_source(name, constraint, source)
    }

    fn add_with_source(
        &mut self,
        name: &str,
        constraint: Constraint,
        source: String,
    ) -> Result<(), ManagerError> {
        if self.constraints.iter().any(|r| r.name == name) {
            return Err(ManagerError::DuplicateName(name.to_string()));
        }
        let class = classify(constraint.program());
        let engine = Engine::new(constraint.program().clone())?;

        // §5 form?
        let cqc = if constraint.is_single_rule() {
            let rule = constraint.panic_rules().next().expect("validated");
            let cq = Cq::from_rule(rule);
            Cqc::new(cq, |p| self.db.locality(p)).ok()
        } else {
            None
        };
        let ra_plan = cqc.as_ref().and_then(|c| compile_ra(c).ok());
        let domain = self.solver.domain;
        let icq = cqc.as_ref().and_then(|c| IcqTest::new(c, domain).ok());
        // Registration-time monotonicity analysis + seeded delta plans:
        // decides, per future update, whether stage 4 can run from the
        // Δ alone instead of a post-update snapshot.
        let delta = DeltaPlanSet::compile(constraint.program());
        // Compiled pre-tests and the per-template stage pipeline: which
        // cheap stages run, in which order, for each update shape.
        let pretests = PreTestSet::compile(&constraint);
        let has_local_test = ra_plan.is_some() || icq.is_some() || cqc.is_some();
        let pipeline =
            StagePipeline::compile(&pretests, &delta, &|p| self.db.locality(p), has_local_test);

        self.constraints.push(Registered {
            name: name.to_string(),
            source,
            constraint,
            class,
            engine,
            cqc,
            ra_plan,
            icq,
            subsumed: false,
            delta,
            pretests,
            pipeline,
            union_cache: Mutex::new(None),
            stage4_cache: Mutex::new(None),
        });
        // A new constraint can contribute reductions to its siblings'
        // stage-3 unions; any prepared union is now incomplete.
        for r in &mut self.constraints {
            *r.union_cache.get_mut().expect("union cache lock poisoned") = None;
        }
        self.recompute_subsumption();
        Ok(())
    }

    /// §3: recompute which constraints are subsumed by the rest.
    fn recompute_subsumption(&mut self) {
        let all: Vec<Constraint> = self
            .constraints
            .iter()
            .map(|r| r.constraint.clone())
            .collect();
        for (i, reg) in self.constraints.iter_mut().enumerate() {
            let others: Vec<Constraint> = all
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            reg.subsumed = !others.is_empty()
                && subsumes(&others, &reg.constraint, self.solver)
                    .map(|s| s.answer.is_yes())
                    .unwrap_or(false);
        }
    }

    /// The registered constraint names, with their Fig. 2.1 classes.
    pub fn constraints(&self) -> Vec<(&str, ConstraintClass)> {
        self.constraints
            .iter()
            .map(|r| (r.name.as_str(), r.class))
            .collect()
    }

    /// Is the named constraint subsumed by the others (§3)?
    pub fn is_subsumed(&self, name: &str) -> Option<bool> {
        self.constraints
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.subsumed)
    }

    /// Checks one update against every constraint **without applying it**.
    /// Assumes all constraints hold on the current database (the paper's
    /// standing assumption, §2).
    pub fn check_update(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        self.check_update_inner(update, None)
    }

    /// Like [`check_update`](Self::check_update), but the manager's
    /// database is a **local view** (remote relations declared, empty) and
    /// stage 4 reads remote relations through `remote`.
    ///
    /// Each remote relation a full check needs is fetched at most once per
    /// call (and re-fetched fresh on the next call). If a fetch fails the
    /// affected constraints report
    /// [`Outcome::Unknown`]`(`[`UnknownCause::RemoteUnavailable`]`)` — the
    /// call itself still succeeds; unreachability is an answer, not an
    /// error. Transport counters measured during the call land in
    /// [`CheckReport::wire`].
    pub fn check_update_with_remote(
        &mut self,
        update: &Update,
        remote: &mut dyn RemoteSource,
    ) -> Result<CheckReport, ManagerError> {
        self.check_update_inner(update, Some(remote))
    }

    /// Checks a batch of updates **without applying any of them**. Report
    /// `k` has the same outcomes and counters as `check_update(&updates[k])`
    /// — per-update semantics; the updates do not see each other — but the
    /// batch shares machinery a sequential loop rebuilds per call: each
    /// constraint's delta plans are seeded with the batch's Δ-tuples in
    /// one pass over a single relation load, snapshot fallbacks share the
    /// memoized post-update build per distinct update, and duplicate
    /// updates hit the stage-4 verdict cache.
    pub fn check_updates(&mut self, updates: &[Update]) -> Result<Vec<CheckReport>, ManagerError> {
        self.check_updates_inner(updates, None)
    }

    /// Batch variant of
    /// [`check_update_with_remote`](Self::check_update_with_remote): each
    /// remote relation is hydrated **at most once per batch** instead of
    /// once per update — the transport saving is the point of batching,
    /// so per-report [`CheckReport::wire`] stats attribute each fetch to
    /// the first update that needed it rather than repeating per update.
    /// Degradation stays **per update**: an unreachable relation turns
    /// only the updates that needed it while it was down to `Unknown`,
    /// and later updates in the batch re-try the fetch. Outcomes and
    /// read counters still match per-update checks.
    pub fn check_updates_with_remote(
        &mut self,
        updates: &[Update],
        remote: &mut dyn RemoteSource,
    ) -> Result<Vec<CheckReport>, ManagerError> {
        self.check_updates_inner(updates, Some(remote))
    }

    fn check_updates_inner(
        &mut self,
        updates: &[Update],
        mut remote: Option<&mut dyn RemoteSource>,
    ) -> Result<Vec<CheckReport>, ManagerError> {
        /// Where update × constraint landed after the cheap stages.
        enum Slot {
            Done(CheapOutcome),
            Stage4,
        }
        let n = self.constraints.len();

        // Pass 1, update-major: the cheap stages and hydration. The
        // `hydrated` map persists across the whole batch, so each remote
        // relation is fetched at most once; the per-update wire delta
        // attributes each fetch to the first update whose escalation
        // needed it.
        let mut slots: Vec<Vec<Slot>> = Vec::with_capacity(updates.len());
        let mut wires = Vec::with_capacity(updates.len());
        let mut times: Vec<StageTimes> = vec![StageTimes::default(); updates.len()];
        let mut hydrated: BTreeMap<String, bool> = BTreeMap::new();
        for (u, update) in updates.iter().enumerate() {
            // Successful hydrations persist for the whole batch; *failed*
            // ones are forgotten at each update boundary, so a transient
            // fault degrades the update that hit it and the next update
            // re-tries the fetch. One poisoned exchange must not flip an
            // unrelated update's verdict to Unknown.
            hydrated.retain(|_, ok| *ok);
            let stats_before = remote.as_deref().map(|r| r.wire_stats());
            let mut row = Vec::with_capacity(n);
            for i in 0..n {
                if let Some(cheap) =
                    self.try_cheap_stages(i, update, remote.is_some(), &mut times[u])
                {
                    row.push(Slot::Done(cheap));
                    continue;
                }
                if let Some(src) = remote.as_deref_mut() {
                    let preds: Vec<String> = self.constraints[i]
                        .constraint
                        .program()
                        .edb_predicates()
                        .into_iter()
                        .filter(|p| self.db.locality(p.as_str()) == Some(Locality::Remote))
                        .map(|p| p.as_str().to_string())
                        .collect();
                    let mut reachable = true;
                    for pred in preds {
                        let ok = match hydrated.get(&pred) {
                            Some(&ok) => ok,
                            None => {
                                let ok = self.hydrate_remote(src, &pred);
                                hydrated.insert(pred.clone(), ok);
                                ok
                            }
                        };
                        reachable &= ok;
                    }
                    if !reachable {
                        row.push(Slot::Done(CheapOutcome::free(Outcome::Unknown(
                            UnknownCause::RemoteUnavailable,
                        ))));
                        continue;
                    }
                }
                row.push(Slot::Stage4);
            }
            wires.push(match (&stats_before, remote.as_deref()) {
                (Some(before), Some(src)) => src.wire_stats().delta_since(before),
                _ => Default::default(),
            });
            slots.push(row);
        }

        // Pass 2, constraint-major: stage 4. Cache-missed eligible updates
        // go through the constraint's delta plans in one batched pass over
        // one relation load; the rest share the memoized post-update
        // snapshot per distinct update.
        let deltas: Vec<DeltaSet> = updates.iter().map(DeltaSet::from_update).collect();
        let mut stage4: BTreeMap<(usize, usize), Stage4Result> = BTreeMap::new();
        for i in 0..n {
            let mut batched: Vec<usize> = Vec::new();
            for (u, row) in slots.iter().enumerate() {
                if !matches!(row[i], Slot::Stage4) {
                    continue;
                }
                let t0 = Instant::now();
                if let Some(hit) = self.stage4_probe(i, &updates[u]) {
                    stage4.insert((u, i), hit);
                } else if self.delta_eligible(i, &deltas[u]) {
                    batched.push(u);
                } else {
                    self.ensure_post_snapshot(&updates[u])?;
                    let after = &self.post_memo.as_ref().expect("just built").after;
                    let violated = self.constraints[i].engine.run(after).derives_panic();
                    let (tuples, bytes) = self.remote_cost(i);
                    self.stage4_store(i, &updates[u], violated, tuples, bytes);
                    stage4.insert(
                        (u, i),
                        Stage4Result {
                            outcome: verdict_outcome(violated),
                            tuples,
                            bytes,
                            kind: Stage4Kind::FullSnapshot,
                            seeds: 0,
                        },
                    );
                }
                times[u].stage4_us += micros_since(t0);
            }
            if batched.is_empty() {
                continue;
            }
            let t0 = Instant::now();
            let (tuples, bytes) = self.remote_cost(i);
            let ds: Vec<DeltaSet> = batched.iter().map(|&u| deltas[u].clone()).collect();
            let verdicts = self.constraints[i].delta.check_batch(&self.db, &ds);
            for (&u, v) in batched.iter().zip(&verdicts) {
                self.stage4_store(i, &updates[u], v.violated, tuples, bytes);
                stage4.insert(
                    (u, i),
                    Stage4Result {
                        outcome: verdict_outcome(v.violated),
                        tuples,
                        bytes,
                        kind: Stage4Kind::DeltaSeeded,
                        seeds: v.seeds_joined,
                    },
                );
            }
            // One timed pass decided the whole batch slice: attribute an
            // equal share to each update it settled.
            let share = micros_since(t0) / batched.len() as f64;
            for &u in &batched {
                times[u].stage4_us += share;
            }
        }

        // Assemble per-update reports in registration order, then restore
        // the local view.
        let mut reports = Vec::with_capacity(updates.len());
        for (u, row) in slots.into_iter().enumerate() {
            let mut report = CheckReport::default();
            for (i, slot) in row.into_iter().enumerate() {
                let name = self.constraints[i].name.clone();
                match slot {
                    Slot::Done(cheap) => {
                        report.outcomes.push((name, cheap.outcome));
                        report.remote_tuples_read += cheap.tuples;
                        report.remote_bytes_read += cheap.bytes;
                    }
                    Slot::Stage4 => {
                        let r = stage4
                            .remove(&(u, i))
                            .expect("pass 2 covered every escalation");
                        push_stage4(&mut report, name, r);
                    }
                }
            }
            report.wire = wires[u];
            report.stage_times = times[u];
            reports.push(report);
        }
        if remote.is_some() {
            for (pred, ok) in &hydrated {
                if *ok {
                    if let Some(rel) = self.db.relation_mut(pred) {
                        rel.clear();
                    }
                }
            }
        }
        Ok(reports)
    }

    fn check_update_inner(
        &mut self,
        update: &Update,
        mut remote: Option<&mut dyn RemoteSource>,
    ) -> Result<CheckReport, ManagerError> {
        // Independent constraints can be checked in parallel: stages 1–3
        // are read-only, and stage 4 runs read-only against a shared
        // post-update snapshot. The remote path stays sequential — its
        // stage-4 hydration mutates the local view in place.
        if remote.is_none() && self.parallel_wanted() {
            return self.check_update_parallel(update);
        }
        let mut report = CheckReport::default();
        let mut times = StageTimes::default();
        let stats_before = remote.as_deref().map(|r| r.wire_stats());
        // Remote relations hydrated so far this call: pred → fetch ok?
        let mut hydrated: BTreeMap<String, bool> = BTreeMap::new();

        let n = self.constraints.len();
        for i in 0..n {
            // The cheap stages (compiled pipeline or legacy ladder).
            if let Some(cheap) = self.try_cheap_stages(i, update, remote.is_some(), &mut times) {
                report
                    .outcomes
                    .push((self.constraints[i].name.clone(), cheap.outcome));
                report.remote_tuples_read += cheap.tuples;
                report.remote_bytes_read += cheap.bytes;
                continue;
            }

            // Stage 4 — full check (reads remote data). With a remote
            // source, hydrate the remote relations the constraint mentions
            // first; a failed fetch degrades the outcome to Unknown.
            if let Some(src) = remote.as_deref_mut() {
                let preds: Vec<String> = self.constraints[i]
                    .constraint
                    .program()
                    .edb_predicates()
                    .into_iter()
                    .filter(|p| self.db.locality(p.as_str()) == Some(Locality::Remote))
                    .map(|p| p.as_str().to_string())
                    .collect();
                let mut reachable = true;
                for pred in preds {
                    let ok = match hydrated.get(&pred) {
                        Some(&ok) => ok,
                        None => {
                            // Hydration swaps the relation's tuple set,
                            // so the memoized post-update snapshot's pins
                            // go stale on their own — no manual reset.
                            let ok = self.hydrate_remote(src, &pred);
                            hydrated.insert(pred.clone(), ok);
                            ok
                        }
                    };
                    reachable &= ok;
                }
                if !reachable {
                    report.outcomes.push((
                        self.constraints[i].name.clone(),
                        Outcome::Unknown(UnknownCause::RemoteUnavailable),
                    ));
                    continue;
                }
            }
            let t0 = Instant::now();
            let r4 = self.full_check(i, update)?;
            times.stage4_us += micros_since(t0);
            push_stage4(&mut report, self.constraints[i].name.clone(), r4);
        }
        report.stage_times = times;

        if let Some(src) = remote.as_deref() {
            // Restore the local view: drop the hydrated remote contents.
            for (pred, ok) in &hydrated {
                if *ok {
                    if let Some(rel) = self.db.relation_mut(pred) {
                        rel.clear();
                    }
                }
            }
            if let Some(before) = stats_before {
                report.wire = src.wire_stats().delta_since(&before);
            }
        }
        Ok(report)
    }

    /// The sibling constraints of `i` (everything else, registration
    /// order) — the `C₁ ∪ ⋯ ∪ Cₙ` of the §4 containment test.
    fn siblings(&self, i: usize) -> Vec<Constraint> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.constraint.clone())
            .collect()
    }

    /// The cheap stages for constraint `i`, all read-only. `None` means
    /// escalate to a full check.
    ///
    /// Flat constraints walk their compiled [`StagePipeline`] plan for
    /// the update's template — cheapest stage first, each stage skipped
    /// when its declared applicability rules it out (`remote_in_play`
    /// disables pre-tests whose residuals read remote-declared
    /// relations: the local view holds those empty before hydration).
    /// Non-flat constraints — and every constraint when
    /// [`set_pretest_checking`](Self::set_pretest_checking) pins the
    /// pipeline off — take the legacy fixed-order ladder instead.
    fn try_cheap_stages(
        &self,
        i: usize,
        update: &Update,
        remote_in_play: bool,
        times: &mut StageTimes,
    ) -> Option<CheapOutcome> {
        let reg = &self.constraints[i];
        if !self.pretest_wanted() || !reg.pretests.compiled() {
            return self.try_cheap_stages_legacy(i, update, times);
        }
        let template = UpdateTemplate::of(update);
        for stage in reg.pipeline.plan(&template).stages() {
            match stage.id {
                StageId::Subsumption => {
                    if timed(&mut times.subsumption_us, || reg.subsumed) {
                        return Some(CheapOutcome::free(Outcome::Holds(Method::Subsumed)));
                    }
                }
                StageId::Prefilter => {
                    let v = timed(&mut times.prefilter_us, || {
                        reg.pretests.prefilter(update, self.solver)
                    });
                    if v == PreVerdict::Untouched {
                        return Some(CheapOutcome::free(Outcome::Holds(
                            Method::IndependentOfUpdate,
                        )));
                    }
                }
                StageId::PreTest => {
                    if stage.applicability == Applicability::SingleSiteOnly && remote_in_play {
                        continue;
                    }
                    let eval = timed(&mut times.pretest_us, || {
                        reg.pretests.eval(&self.db, update, self.solver, &|p| {
                            self.db.locality(p) == Some(Locality::Remote)
                        })
                    });
                    let outcome = match eval.verdict {
                        PreVerdict::Untouched => Outcome::Holds(Method::IndependentOfUpdate),
                        PreVerdict::Holds => Outcome::Holds(Method::PreTest),
                        PreVerdict::Violated => Outcome::Violated,
                        // Reads performed before the open host surfaced
                        // are not charged — the full check re-derives the
                        // verdict and charges its own remote cost.
                        PreVerdict::Escalate => continue,
                    };
                    return Some(CheapOutcome {
                        outcome,
                        tuples: eval.tuples_read as usize,
                        bytes: eval.bytes_read as usize,
                    });
                }
                StageId::Independence => {
                    // The compiled prefilter already ran (it precedes this
                    // stage in every plan), so only the rewrite +
                    // containment half remains.
                    let independent = timed(&mut times.independence_us, || {
                        independent_of_update_rewrite(
                            &reg.constraint,
                            &self.siblings(i),
                            update,
                            self.solver,
                        )
                        .map(|a| a.is_yes())
                        .unwrap_or(false)
                    });
                    if independent {
                        return Some(CheapOutcome::free(Outcome::Holds(
                            Method::IndependentOfUpdate,
                        )));
                    }
                }
                StageId::LocalTest => {
                    // Statically gated: the delta-seeded stage 4 decides
                    // this template exactly in O(|Δ|) with zero wire cost
                    // — unless the delta path is pinned off at runtime.
                    if stage.delta_gated && self.delta_override.unwrap_or(true) {
                        continue;
                    }
                    let Update::Insert { pred, tuple } = update else {
                        continue;
                    };
                    let kind = timed(&mut times.local_test_us, || {
                        self.try_local_test(i, pred.as_str(), tuple)
                    });
                    if let Some(kind) = kind {
                        return Some(CheapOutcome::free(Outcome::Holds(Method::LocalTest(kind))));
                    }
                }
            }
        }
        None
    }

    /// The fixed-order ladder of earlier revisions: §3 subsumption, §4
    /// independence of the update, §5–6 complete local tests. Used for
    /// non-flat constraints and when the pre-test pipeline is pinned off.
    fn try_cheap_stages_legacy(
        &self,
        i: usize,
        update: &Update,
        times: &mut StageTimes,
    ) -> Option<CheapOutcome> {
        // Stage 1 — subsumption.
        if timed(&mut times.subsumption_us, || self.constraints[i].subsumed) {
            return Some(CheapOutcome::free(Outcome::Holds(Method::Subsumed)));
        }

        // Stage 2 — query independent of update.
        let independent = timed(&mut times.independence_us, || {
            independent_of_update(
                &self.constraints[i].constraint,
                &self.siblings(i),
                update,
                self.solver,
            )
            .map(|a| a.is_yes())
            .unwrap_or(false)
        });
        if independent {
            return Some(CheapOutcome::free(Outcome::Holds(
                Method::IndependentOfUpdate,
            )));
        }

        // Stage 3 — complete local test (insertions into the constraint's
        // local relation). Cost-gated: the ladder prefers stage 3 because
        // stage 4 normally pays wire traffic, but when the constraint
        // reads no remote relation and the Δ is delta-eligible, stage 4
        // decides the update exactly via the seeded plans in O(|Δ|) —
        // strictly cheaper than the local test's O(|L|) pass — so
        // escalate directly.
        if let Update::Insert { pred, tuple } = update {
            if !self.stage4_beats_local_test(i, update) {
                let kind = timed(&mut times.local_test_us, || {
                    self.try_local_test(i, pred.as_str(), tuple)
                });
                if let Some(kind) = kind {
                    return Some(CheapOutcome::free(Outcome::Holds(Method::LocalTest(kind))));
                }
            }
        }
        None
    }

    /// Would escalating constraint `i` straight to stage 4 be cheaper
    /// than running its complete local test? True when the update is
    /// delta-eligible (the seeded plans decide it in O(|Δ|), no snapshot)
    /// *and* the constraint reads no remote relation (escalation costs no
    /// wire traffic). Pinning the delta path off
    /// ([`ConstraintManager::set_delta_checking`]) disables the gate with
    /// it, so the ladder degrades to its paper order.
    fn stage4_beats_local_test(&self, i: usize, update: &Update) -> bool {
        let delta = DeltaSet::from_update(update);
        self.delta_eligible(i, &delta)
            && self.constraints[i]
                .constraint
                .program()
                .edb_predicates()
                .iter()
                .all(|p| self.db.locality(p.as_str()) != Some(Locality::Remote))
    }

    /// Should this check fan out across threads?
    fn parallel_wanted(&self) -> bool {
        match self.parallel_override {
            Some(v) => v && self.constraints.len() > 1,
            // Default: only when threads can actually overlap. On one core
            // the sequential path is strictly better — it applies/undoes
            // the update in place instead of snapshotting the database.
            None => {
                self.constraints.len() > 1
                    && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
            }
        }
    }

    /// Checks every constraint with the work fanned out over scoped
    /// threads, in two phases. Phase A runs everything that needs no
    /// post-update snapshot — stages 1–3, the stage-4 verdict cache, and
    /// the seeded delta path — so an all-delta check never clones the
    /// database at all. Phase B builds the memoized snapshot once for
    /// whatever remains. Outcomes are merged back **in registration
    /// order**, so the report equals the sequential path's.
    fn check_update_parallel(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        let n = self.constraints.len();
        let delta = DeltaSet::from_update(update);
        let phase_a: Vec<(PhaseA, StageTimes)> = std::thread::scope(|scope| {
            let this = &*self;
            let delta = &delta;
            let handles: Vec<_> = (0..n)
                .map(|i| scope.spawn(move || this.check_one_phase_a(i, update, delta)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("constraint checker thread panicked"))
                .collect()
        });
        let mut times = StageTimes::default();
        for (_, t) in &phase_a {
            times.absorb(t);
        }

        let pending: Vec<usize> = phase_a
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| matches!(r, PhaseA::NeedsSnapshot))
            .map(|(i, _)| i)
            .collect();
        let mut snapshot_results: BTreeMap<usize, Stage4Result> = BTreeMap::new();
        if !pending.is_empty() {
            let t0 = Instant::now();
            self.ensure_post_snapshot(update)?;
            let after = &self.post_memo.as_ref().expect("just built").after;
            let this = &*self;
            let verdicts: Vec<(usize, bool)> = std::thread::scope(|scope| {
                let handles: Vec<_> = pending
                    .iter()
                    .map(|&i| {
                        scope.spawn(move || {
                            (i, this.constraints[i].engine.run(after).derives_panic())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("constraint checker thread panicked"))
                    .collect()
            });
            for (i, violated) in verdicts {
                let (tuples, bytes) = self.remote_cost(i);
                self.stage4_store(i, update, violated, tuples, bytes);
                snapshot_results.insert(
                    i,
                    Stage4Result {
                        outcome: verdict_outcome(violated),
                        tuples,
                        bytes,
                        kind: Stage4Kind::FullSnapshot,
                        seeds: 0,
                    },
                );
            }
            times.stage4_us += micros_since(t0);
        }

        let mut report = CheckReport::default();
        for (i, (a, _)) in phase_a.into_iter().enumerate() {
            let name = self.constraints[i].name.clone();
            match a {
                PhaseA::Cheap(cheap) => {
                    report.outcomes.push((name, cheap.outcome));
                    report.remote_tuples_read += cheap.tuples;
                    report.remote_bytes_read += cheap.bytes;
                }
                PhaseA::Settled(r) => push_stage4(&mut report, name, r),
                PhaseA::NeedsSnapshot => {
                    let r = snapshot_results
                        .remove(&i)
                        .expect("phase B covered every pending constraint");
                    push_stage4(&mut report, name, r);
                }
            }
        }
        report.stage_times = times;
        Ok(report)
    }

    /// One constraint's snapshot-free ladder: the cheap stages, then the
    /// stage-4 verdict cache, then the seeded delta path. Read-only up to
    /// this constraint's own cache slot. The parallel path never runs
    /// with a remote source, so pre-tests are never suppressed here.
    fn check_one_phase_a(
        &self,
        i: usize,
        update: &Update,
        delta: &DeltaSet,
    ) -> (PhaseA, StageTimes) {
        let mut times = StageTimes::default();
        if let Some(cheap) = self.try_cheap_stages(i, update, false, &mut times) {
            return (PhaseA::Cheap(cheap), times);
        }
        let t0 = Instant::now();
        if let Some(hit) = self.stage4_probe(i, update) {
            times.stage4_us += micros_since(t0);
            return (PhaseA::Settled(hit), times);
        }
        if self.delta_eligible(i, delta) {
            let (tuples, bytes) = self.remote_cost(i);
            let v = self.constraints[i].delta.check(&self.db, delta);
            self.stage4_store(i, update, v.violated, tuples, bytes);
            times.stage4_us += micros_since(t0);
            return (
                PhaseA::Settled(Stage4Result {
                    outcome: verdict_outcome(v.violated),
                    tuples,
                    bytes,
                    kind: Stage4Kind::DeltaSeeded,
                    seeds: v.seeds_joined,
                }),
                times,
            );
        }
        times.stage4_us += micros_since(t0);
        (PhaseA::NeedsSnapshot, times)
    }

    /// Remote tuples/bytes a full check of constraint `i` consults: every
    /// remote relation the constraint mentions, in full.
    fn remote_cost(&self, i: usize) -> (usize, usize) {
        let mut tuples = 0usize;
        let mut bytes = 0usize;
        let program = self.constraints[i].constraint.program();
        for pred in program.edb_predicates() {
            if self.db.locality(pred.as_str()) == Some(Locality::Remote) {
                if let Some(rel) = self.db.relation(pred.as_str()) {
                    tuples += rel.len();
                    bytes += rel.iter().map(|t| t.transfer_bytes()).sum::<usize>();
                }
            }
        }
        (tuples, bytes)
    }

    /// Fetches remote relation `pred` through `src` and installs it into
    /// the database. Returns `false` (instead of erroring) when the fetch
    /// fails or the payload doesn't match the declared shape.
    fn hydrate_remote(&mut self, src: &mut dyn RemoteSource, pred: &str) -> bool {
        let Some(arity) = self.db.decl(pred).map(|d| d.arity) else {
            return false;
        };
        match src.fetch_relation(pred) {
            Ok(rows) if rows.iter().all(|t| t.arity() == arity) => {
                let rel = ccpi_storage::Relation::from_tuples(arity, rows);
                self.db.set_relation(pred, rel).is_ok()
            }
            _ => false,
        }
    }

    /// Checks, then applies the update (even when violations are found —
    /// callers who want to reject can consult the report first).
    pub fn process(&mut self, update: &Update) -> Result<CheckReport, ManagerError> {
        let report = self.check_update(update)?;
        self.apply_update(update)?;
        Ok(report)
    }

    /// Applies the update **without checking it**, maintaining the
    /// manager's incremental caches. Returns whether the database
    /// changed. This is the apply half of [`process`](Self::process), for
    /// callers (the durable admission pipeline, recovery replay) that
    /// have already decided admission.
    pub fn apply_update(&mut self, update: &Update) -> Result<bool, ManagerError> {
        // An insert extends each affected Theorem 5.2 union by the new
        // tuple's reductions, so a cache that is current at apply time can
        // be maintained incrementally instead of rebuilt from scratch on
        // the next check. (Deletes shrink unions and simply invalidate:
        // the snapshot pin makes that automatic.) Currency must be judged
        // against the pre-apply tuple set.
        let current: Vec<bool> = match update {
            Update::Insert { pred, .. } => self.current_union_caches(pred.as_str()),
            Update::Delete { .. } => Vec::new(),
        };
        let changed = self.db.apply(update)?;
        if changed {
            if let Update::Insert { pred, tuple } = update {
                self.extend_union_caches(pred.as_str(), tuple, &current);
            }
        }
        Ok(changed)
    }

    /// Which constraints' union caches exist and match `pred`'s current
    /// tuple set?
    fn current_union_caches(&self, pred: &str) -> Vec<bool> {
        let Some(rel) = self.db.relation(pred) else {
            return vec![false; self.constraints.len()];
        };
        self.constraints
            .iter()
            .map(|r| {
                r.union_cache
                    .lock()
                    .expect("union cache lock poisoned")
                    .as_ref()
                    .is_some_and(|c| c.snapshot.same_as(rel))
            })
            .collect()
    }

    /// After `tuple` was inserted into `pred`, appends its reductions to
    /// every union cache that was current pre-insert (`current`) and
    /// re-pins those caches to the post-insert tuple set.
    fn extend_union_caches(&mut self, pred: &str, tuple: &ccpi_storage::Tuple, current: &[bool]) {
        let Some(rel) = self.db.relation(pred) else {
            return;
        };
        // The new tuple's reduction under each registered CQC over `pred`.
        let reds: Vec<Option<Cq>> = self
            .constraints
            .iter()
            .map(|r| {
                r.cqc
                    .as_ref()
                    .filter(|c| c.local_pred().as_str() == pred)
                    .and_then(|c| c.red(tuple))
            })
            .collect();
        for i in 0..self.constraints.len() {
            if !current.get(i).copied().unwrap_or(false) {
                continue;
            }
            let slot = self.constraints[i]
                .union_cache
                .get_mut()
                .expect("union cache lock poisoned");
            let Some(cache) = slot.as_mut() else {
                continue;
            };
            // Own reduction first, then siblings' in registration order —
            // the same grouping a from-scratch build uses.
            let mut ok = true;
            if let Some(r) = &reds[i] {
                ok &= cache.union.add_member(r).is_ok();
            }
            for (j, red) in reds.iter().enumerate() {
                if j == i {
                    continue;
                }
                if let Some(r) = red {
                    ok &= cache.union.add_member(r).is_ok();
                }
            }
            if ok {
                cache.snapshot = rel.snapshot();
            } else {
                *slot = None;
            }
        }
    }

    fn try_local_test(
        &self,
        i: usize,
        pred: &str,
        tuple: &ccpi_storage::Tuple,
    ) -> Option<LocalTestKind> {
        let reg = &self.constraints[i];
        let cqc = reg.cqc.as_ref()?;
        if cqc.local_pred().as_str() != pred {
            return None;
        }
        let local = self.db.relation(pred)?;
        if tuple.arity() != local.arity() {
            return None;
        }
        // Multi-constraint extension (Theorem 5.2's "add to the union …
        // the reductions of the other constraints by all tuples in L"):
        // does any sibling CQC share this local relation?
        let has_siblings = self.constraints.iter().enumerate().any(|(j, o)| {
            j != i
                && o.cqc
                    .as_ref()
                    .is_some_and(|c| c.local_pred().as_str() == pred)
        });
        // With no sibling reductions, the compiled artifacts are complete:
        // a negative answer settles the local test. With siblings, a
        // negative compiled answer may still be rescued by the extended
        // union, so fall through to the containment test.
        if !has_siblings {
            if let Some(plan) = &reg.ra_plan {
                return plan
                    .test(tuple, local)
                    .holds()
                    .then_some(LocalTestKind::RaPlan);
            }
            if let Some(icq) = &reg.icq {
                return icq
                    .test(tuple, local)
                    .holds()
                    .then_some(LocalTestKind::Interval);
            }
        } else {
            if let Some(plan) = &reg.ra_plan {
                if plan.test(tuple, local).holds() {
                    return Some(LocalTestKind::RaPlan);
                }
            }
            if let Some(icq) = &reg.icq {
                if icq.test(tuple, local).holds() {
                    return Some(LocalTestKind::Interval);
                }
            }
        }
        // Example 5.4: no reduction — the insertion cannot violate C.
        let Some(red_t) = cqc.red(tuple) else {
            return Some(LocalTestKind::Containment);
        };
        // The containment test proper, through the prepared-union cache:
        // reductions of a fixed CQC all share one rectified shape, so the
        // union's disjuncts are tuple-independent and survive across
        // checks until the relation itself changes.
        let mut slot = reg.union_cache.lock().expect("union cache lock poisoned");
        if !slot.as_ref().is_some_and(|c| c.snapshot.same_as(local)) {
            *slot = self.build_union_cache(i, cqc, local, &red_t);
        }
        // A failed build (impossible for a validated CQC) is conservative:
        // escalate to a full check.
        let cache = slot.as_ref()?;
        match cache.union.contains(&red_t, self.solver) {
            Ok(true) => Some(LocalTestKind::Containment),
            _ => None,
        }
    }

    /// Prepares constraint `i`'s Theorem 5.2 union over `local`: its own
    /// reductions first, then each sibling's (registration order), exactly
    /// the union `complete_local_test_with` would assemble per check.
    fn build_union_cache(
        &self,
        i: usize,
        cqc: &Cqc,
        local: &Relation,
        red_t: &Cq,
    ) -> Option<UnionCache> {
        // Pin the tuple set *before* reading it, so a concurrent mutation
        // (none exist today — checks share `&self` — but cheap insurance)
        // could only invalidate, never falsely validate.
        let snapshot = local.snapshot();
        let mut union = prepare_union(cqc, red_t, local).ok()?;
        for (j, other) in self.constraints.iter().enumerate() {
            if j == i {
                continue;
            }
            let Some(ocqc) = other.cqc.as_ref() else {
                continue;
            };
            if ocqc.local_pred() != cqc.local_pred() {
                continue;
            }
            extend_union(&mut union, ocqc, local).ok()?;
        }
        Some(UnionCache { snapshot, union })
    }

    /// Stage 4 — full evaluation of the constraint on the post-update
    /// database, in cost order:
    ///
    /// 1. **verdict cache** — same update, same version of every relation
    ///    the constraint reads: return the memoized verdict;
    /// 2. **delta path** — when the registration-time monotonicity
    ///    analysis says the Δ decides the verdict, run the seeded plans
    ///    over the *pre-update* relations (no snapshot is ever built);
    /// 3. **snapshot fallback** — evaluate the engine against the
    ///    memoized copy-on-write post-update snapshot.
    ///
    /// The delta path leans on the paper's standing assumption (§2): the
    /// pre-update database satisfies the constraint, so a post-update
    /// violation must have a derivation through a Δ-tuple.
    fn full_check(&mut self, i: usize, update: &Update) -> Result<Stage4Result, ManagerError> {
        if let Some(hit) = self.stage4_probe(i, update) {
            return Ok(hit);
        }
        // Remote cost: every remote relation the constraint mentions must
        // be consulted.
        let (tuples, bytes) = self.remote_cost(i);
        let delta = DeltaSet::from_update(update);
        let (violated, kind, seeds) = if self.delta_eligible(i, &delta) {
            let v = self.constraints[i].delta.check(&self.db, &delta);
            (v.violated, Stage4Kind::DeltaSeeded, v.seeds_joined)
        } else {
            self.ensure_post_snapshot(update)?;
            let after = &self.post_memo.as_ref().expect("just built").after;
            let violated = self.constraints[i].engine.run(after).derives_panic();
            (violated, Stage4Kind::FullSnapshot, 0)
        };
        self.stage4_store(i, update, violated, tuples, bytes);
        Ok(Stage4Result {
            outcome: verdict_outcome(violated),
            tuples,
            bytes,
            kind,
            seeds,
        })
    }

    /// Probes constraint `i`'s stage-4 verdict cache.
    fn stage4_probe(&self, i: usize, update: &Update) -> Option<Stage4Result> {
        let slot = self.constraints[i]
            .stage4_cache
            .lock()
            .expect("stage-4 cache lock poisoned");
        let cache = slot.as_ref()?;
        if cache.update != *update || !self.pins_current(&cache.pins) {
            return None;
        }
        Some(Stage4Result {
            outcome: verdict_outcome(cache.violated),
            tuples: cache.tuples,
            bytes: cache.bytes,
            kind: Stage4Kind::CachedVerdict,
            seeds: 0,
        })
    }

    /// Records constraint `i`'s stage-4 verdict with its validity key:
    /// the update value plus pins of every relation the constraint reads.
    fn stage4_store(&self, i: usize, update: &Update, violated: bool, tuples: usize, bytes: usize) {
        let pins = self.constraints[i]
            .constraint
            .program()
            .edb_predicates()
            .into_iter()
            .map(|p| {
                let snap = self.db.relation(p.as_str()).map(|r| r.snapshot());
                (p.as_str().to_string(), snap)
            })
            .collect();
        *self.constraints[i]
            .stage4_cache
            .lock()
            .expect("stage-4 cache lock poisoned") = Some(Stage4Cache {
            update: update.clone(),
            pins,
            violated,
            tuples,
            bytes,
        });
    }

    /// Do all pins still match the live database? A relation that existed
    /// must be the same tuple-set version; one that was absent must still
    /// be absent.
    fn pins_current(&self, pins: &Pins) -> bool {
        pins.iter()
            .all(|(pred, pin)| match (pin, self.db.relation(pred)) {
                (Some(snap), Some(rel)) => snap.same_as(rel),
                (None, None) => true,
                _ => false,
            })
    }

    /// The solver this manager was configured with.
    pub fn solver(&self) -> Solver {
        self.solver
    }

    /// Each registered constraint's name, canonical source, and compiled
    /// delta-plan signature, in registration order — what a checkpoint
    /// persists so recovery can re-register and recompile, then compare
    /// fingerprints.
    pub fn durable_constraints(&self) -> Vec<(String, String, u64)> {
        self.constraints
            .iter()
            .map(|r| (r.name.clone(), r.source.clone(), r.delta.signature()))
            .collect()
    }

    /// The delta-plan signature of a registered constraint.
    pub fn plan_signature(&self, name: &str) -> Option<u64> {
        self.constraints
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.delta.signature())
    }

    /// Stage-4 verdicts whose validity pins still match the live
    /// database — the entries a checkpoint may carry across a restart
    /// (`TupleSnapshot` pins are process-local pointers and cannot be
    /// persisted themselves; validity is re-established at restore time
    /// against the freshly loaded relations).
    pub fn export_verdicts(&self) -> Vec<(String, Update, bool, usize, usize)> {
        self.constraints
            .iter()
            .filter_map(|r| {
                let slot = r.stage4_cache.lock().expect("stage-4 cache lock poisoned");
                let c = slot.as_ref()?;
                if !self.pins_current(&c.pins) {
                    return None;
                }
                Some((
                    r.name.clone(),
                    c.update.clone(),
                    c.violated,
                    c.tuples,
                    c.bytes,
                ))
            })
            .collect()
    }

    /// Re-installs an exported stage-4 verdict, pinning it to the *live*
    /// relations. Sound only when the relations the constraint reads
    /// hold exactly the contents they held when the verdict was
    /// exported — recovery establishes that by restoring verdicts
    /// immediately after loading the checkpoint database and only when
    /// WAL replay touched none of the constraint's relations. Returns
    /// `false` for an unknown constraint name.
    pub fn restore_verdict(
        &self,
        name: &str,
        update: &Update,
        violated: bool,
        tuples: usize,
        bytes: usize,
    ) -> bool {
        let Some(i) = self.constraints.iter().position(|r| r.name == name) else {
            return false;
        };
        self.stage4_store(i, update, violated, tuples, bytes);
        true
    }

    /// Does the named constraint read any relation declared `Remote`?
    /// Such a constraint cannot be judged from the local view alone (its
    /// remote relations are empty there), so the durable pipeline's
    /// ground audits exempt it. `false` for an unknown name.
    pub fn reads_remote(&self, name: &str) -> bool {
        self.constraint_reads(name)
            .iter()
            .any(|p| self.db.locality(p) == Some(Locality::Remote))
    }

    /// Unregisters a constraint by name, undoing its registration-time
    /// side effects (sibling union caches, subsumption). This is the
    /// rollback half of a durable registration whose admission check or
    /// WAL logging failed. Returns whether the constraint was present.
    pub fn remove_constraint(&mut self, name: &str) -> bool {
        let Some(i) = self.constraints.iter().position(|r| r.name == name) else {
            return false;
        };
        self.constraints.remove(i);
        // The removed constraint may have contributed reductions to its
        // siblings' stage-3 unions; any prepared union is now stale.
        for r in &mut self.constraints {
            *r.union_cache.get_mut().expect("union cache lock poisoned") = None;
        }
        self.recompute_subsumption();
        true
    }

    /// Ground truth for one registered constraint against the current
    /// database: a full engine evaluation, bypassing all caches and local
    /// tests. `None` for an unknown name.
    pub fn audit_constraint(&self, name: &str) -> Option<bool> {
        self.constraints
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.engine.run(&self.db).derives_panic())
    }

    /// The EDB relations a registered constraint reads.
    pub fn constraint_reads(&self, name: &str) -> Vec<String> {
        self.constraints
            .iter()
            .find(|r| r.name == name)
            .map(|r| {
                r.constraint
                    .program()
                    .edb_predicates()
                    .into_iter()
                    .map(|p| p.as_str().to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Ground truth for every registered constraint against the current
    /// database: one full engine evaluation each, bypassing all caches
    /// and local tests. The durable recovery audit runs the
    /// [`audit_constraint`](Self::audit_constraint) form per constraint
    /// so it can exempt remote-reading constraints, which a local ground
    /// evaluation cannot judge.
    pub fn audit_full_check(&self) -> Vec<(String, bool)> {
        self.constraints
            .iter()
            .map(|r| (r.name.clone(), r.engine.run(&self.db).derives_panic()))
            .collect()
    }

    /// Builds (or revalidates) the memoized post-update snapshot: the
    /// copy-on-write clone of the database with `update` applied that
    /// every snapshot-path full check of that update shares — across
    /// constraints *and* across repeated checks of the same update. The
    /// memo is keyed on the update value plus pins over every declared
    /// relation, so any database mutation invalidates it automatically.
    fn ensure_post_snapshot(&mut self, update: &Update) -> Result<(), ManagerError> {
        let current = self
            .post_memo
            .as_ref()
            .is_some_and(|m| m.update == *update && m.version == self.db.version());
        if current {
            return Ok(());
        }
        // Copy-on-write: only the updated relation's tuple set is
        // physically copied; the others keep sharing storage and index
        // caches with `self.db`, and the stage-3 union caches pinned to
        // `self.db`'s relations stay valid across the check.
        let mut after = self.db.clone();
        after.apply(update)?;
        self.post_memo = Some(PostSnapshot {
            update: update.clone(),
            version: self.db.version(),
            after,
        });
        self.post_rebuilds += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_storage::tuple;

    fn intervals_mgr() -> ConstraintManager {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        db.insert("l", tuple![5, 10]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        mgr
    }

    #[test]
    fn local_test_certifies_example_5_3_with_zero_remote_reads() {
        let mut mgr = intervals_mgr();
        let report = mgr
            .check_update(&Update::insert("l", tuple![4, 8]))
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::LocalTest(LocalTestKind::Interval)))
        ));
        assert_eq!(report.remote_tuples_read, 0);
        assert_eq!(report.full_checks, 0);
    }

    #[test]
    fn uncovered_insert_falls_through_to_full_check() {
        let mut mgr = intervals_mgr();
        // Remote has a point at 20; inserting (15,25) forbids it.
        mgr.database_mut().insert("r", tuple![20]).unwrap();
        let report = mgr
            .check_update(&Update::insert("l", tuple![15, 25]))
            .unwrap();
        assert_eq!(report.outcome("intervals"), Some(Outcome::Violated));
        assert!(report.remote_tuples_read > 0);
        // The database is unchanged by check_update.
        assert_eq!(mgr.database().relation("l").unwrap().len(), 2);
    }

    #[test]
    fn uncovered_but_unviolated_insert_passes_full_check() {
        let mut mgr = intervals_mgr();
        // On the legacy ladder the uncovered insert escalates to stage 4.
        mgr.set_pretest_checking(Some(false));
        let report = mgr
            .check_update(&Update::insert("l", tuple![15, 25]))
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
        assert_eq!(report.full_checks, 1);
    }

    #[test]
    fn pretest_settles_uncovered_inserts_without_a_full_check() {
        let mut mgr = intervals_mgr();
        // Same uncovered insert as above, compiled pipeline on (the
        // default): the pre-test's filtered scan of `r` (empty) settles
        // the check with zero full checks.
        let report = mgr
            .check_update(&Update::insert("l", tuple![15, 25]))
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::PreTest))
        ));
        assert_eq!(report.full_checks, 0);
        assert!(report.stage_times.pretest_us > 0.0);

        // The plan shapes the pipeline compiled for `intervals`.
        assert_eq!(
            mgr.plan_shape("intervals", &UpdateTemplate::insert("l")),
            Some(crate::pipeline::PlanShape::FullLadder),
            "the scan residual reads remote r"
        );
        assert_eq!(
            mgr.plan_shape("intervals", &UpdateTemplate::delete("l")),
            Some(crate::pipeline::PlanShape::PrefilterOnly),
            "deletes from a positively-read relation cannot violate"
        );
    }

    #[test]
    fn independence_stage_fires_for_unrelated_updates() {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("ri", "panic :- emp(E,D,S) & not dept(D).")
            .unwrap();
        // Inserting a department can only shrink the violation set.
        let report = mgr
            .check_update(&Update::insert("dept", tuple!["toy"]))
            .unwrap();
        assert!(matches!(
            report.outcome("ri"),
            Some(Outcome::Holds(Method::IndependentOfUpdate))
        ));
    }

    #[test]
    fn subsumption_stage_skips_redundant_constraints() {
        let mut db = Database::new();
        db.declare("emp", 2, Locality::Local).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("loose", "panic :- emp(E,D1) & emp(E,D2).")
            .unwrap();
        mgr.add_constraint("tight", "panic :- emp(E,sales) & emp(E,accounting).")
            .unwrap();
        assert_eq!(mgr.is_subsumed("tight"), Some(true));
        assert_eq!(mgr.is_subsumed("loose"), Some(false));
        let report = mgr
            .check_update(&Update::insert("emp", tuple!["x", "sales"]))
            .unwrap();
        assert!(matches!(
            report.outcome("tight"),
            Some(Outcome::Holds(Method::Subsumed))
        ));
    }

    #[test]
    fn ra_plan_stage_fires_for_arithmetic_free_cqcs() {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 2, Locality::Remote).unwrap();
        db.insert("l", tuple![1, 2]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("af", "panic :- l(X,Y) & r(X,Y).")
            .unwrap();
        // Duplicate insert: covered by the existing row via the RA plan.
        let report = mgr
            .check_update(&Update::insert("l", tuple![1, 2]))
            .unwrap();
        assert!(matches!(
            report.outcome("af"),
            Some(Outcome::Holds(Method::LocalTest(LocalTestKind::RaPlan)))
        ));
    }

    #[test]
    fn process_applies_the_update() {
        let mut mgr = intervals_mgr();
        mgr.process(&Update::insert("l", tuple![4, 8])).unwrap();
        assert_eq!(mgr.database().relation("l").unwrap().len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut mgr = intervals_mgr();
        let err = mgr
            .add_constraint("intervals", "panic :- r(Z).")
            .unwrap_err();
        assert!(matches!(err, ManagerError::DuplicateName(_)));
    }

    #[test]
    fn multi_constraint_reductions_extend_the_union() {
        // Two interval constraints over the same local relation; the
        // second's reductions help cover the first's insert.
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        // A non-ICQ-compilable variant to force the containment path:
        // two remote subgoals sharing Z is still handled by thm52.
        mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        // "b" forbids r-points in [5,10] whenever ANY l-row exists with
        // first component <= 5 — gives reductions covering [5,10].
        mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
            .unwrap();
        let report = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        // Constraint "a" alone can't cover [5,8] from [3,6], but b's
        // reduction [5,10] (valid since l has (3,6) with 3 <= 5) does.
        let a = report.outcome("a").unwrap();
        assert!(a.holds() && a.method() != Some(Method::FullCheck), "{a:?}");
    }

    /// Two interval constraints over one local relation: the compiled
    /// shortcuts can't certify across constraints, so these go through the
    /// prepared-union containment path (and therefore the cache).
    fn siblings_mgr(rows: &[(i64, i64)]) -> ConstraintManager {
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        for &(a, b) in rows {
            db.insert("l", tuple![a, b]).unwrap();
        }
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
            .unwrap();
        mgr
    }

    /// `process` maintains the prepared union incrementally on inserts:
    /// a tuple admitted after the cache was built must contribute its
    /// reductions (own *and* sibling) to later local tests.
    #[test]
    fn process_insert_extends_the_union_cache() {
        let mut mgr = siblings_mgr(&[]);
        // The union cache sits behind the stage-3 containment test; the
        // compiled pre-tests would settle these inserts first.
        mgr.set_pretest_checking(Some(false));
        // Build `a`'s cache over the empty relation: nothing covers [5,8],
        // so this escalates (and holds only because `r` is empty).
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
        // Admit (3,6). `a`'s union gains RED_a((3,6)) = [3,6] and — the
        // multi-constraint extension — RED_b((3,6)) = [5,10].
        mgr.process(&Update::insert("l", tuple![3, 6])).unwrap();
        // [5,8] is covered only through sibling `b`'s reduction.
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::LocalTest(
                LocalTestKind::Containment
            )))
        ));
    }

    /// Deleting the tuple whose reductions covered an insert must
    /// invalidate the prepared union: a stale cache would certify an
    /// insert that is no longer safe.
    #[test]
    fn process_delete_invalidates_the_union_cache() {
        let mut mgr = siblings_mgr(&[(3, 6)]);
        // Same reason as the insert variant: reach the union cache.
        mgr.set_pretest_checking(Some(false));
        // Warm `a`'s cache: [5,8] covered via sibling `b`'s [5,10].
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::LocalTest(
                LocalTestKind::Containment
            )))
        ));
        // Remove (3,6): `b`'s reduction disappears with it.
        mgr.process(&Update::delete("l", tuple![3, 6])).unwrap();
        let r = mgr
            .check_update(&Update::insert("l", tuple![5, 8]))
            .unwrap();
        // No longer locally certifiable: must escalate to stage 4.
        assert!(matches!(
            r.outcome("a"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
    }

    /// Differential check: a long-lived manager (whose union caches are
    /// built once and maintained across updates) reports exactly what a
    /// from-scratch manager reports at every step of a mixed stream.
    #[test]
    fn cached_manager_matches_fresh_manager_across_a_stream() {
        fn base_db() -> Database {
            let mut db = Database::new();
            db.declare("l", 2, Locality::Local).unwrap();
            db.declare("r", 1, Locality::Remote).unwrap();
            db
        }
        fn managers(db: &Database) -> ConstraintManager {
            let mut mgr = ConstraintManager::new(db.clone());
            mgr.add_constraint("a", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
                .unwrap();
            mgr.add_constraint("b", "panic :- l(X,Y) & r(Z) & 5 <= Z & Z <= 10 & X <= 5.")
                .unwrap();
            mgr
        }
        let mut live = managers(&base_db());
        // A deterministic mixed stream of interval inserts and deletes.
        let mut seed = 0x2545f49_u64;
        let mut next = move |m: u64| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _ in 0..40 {
            let (a, w) = (next(12) as i64, next(8) as i64);
            let t = tuple![a, a + w];
            let update = if next(4) == 0 {
                Update::delete("l", t)
            } else {
                Update::insert("l", t)
            };
            // A fresh manager over the same database has no caches at all.
            let mut fresh = managers(live.database());
            let want = fresh.check_update(&update).unwrap();
            let got = live.process(&update).unwrap();
            assert_eq!(got, want, "diverged on {update:?}");
        }
    }

    #[test]
    fn remote_source_hydrates_stage_four() {
        use crate::distributed::SiteSplit;
        use crate::remote::{RemoteError, RemoteSource};
        use crate::report::WireStats;

        /// Serves from a captured database and counts fetches.
        struct DbSource {
            remote: Database,
            fetches: u64,
        }
        impl RemoteSource for DbSource {
            fn fetch_relation(
                &mut self,
                pred: &str,
            ) -> Result<Vec<ccpi_storage::Tuple>, RemoteError> {
                self.fetches += 1;
                self.remote
                    .relation(pred)
                    .map(|r| r.iter().cloned().collect())
                    .ok_or_else(|| RemoteError::Protocol(format!("unknown relation {pred}")))
            }
            fn wire_stats(&self) -> WireStats {
                WireStats {
                    requests: self.fetches,
                    round_trips: self.fetches,
                    ..WireStats::default()
                }
            }
        }

        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        db.insert("l", tuple![5, 10]).unwrap();
        db.insert("r", tuple![20]).unwrap();
        let split = SiteSplit::of(&db);
        let mut src = DbSource {
            remote: split.remote,
            fetches: 0,
        };
        let mut mgr = ConstraintManager::new(SiteSplit::local_view(&db));
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();

        // Covered insert: settled by stage 3, zero fetches.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![4, 8]), &mut src)
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::LocalTest(_)))
        ));
        assert_eq!(src.fetches, 0);
        assert!(report.wire.is_zero());

        // Violating insert: needs the remote point r(20).
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![15, 25]), &mut src)
            .unwrap();
        assert_eq!(report.outcome("intervals"), Some(Outcome::Violated));
        assert_eq!(src.fetches, 1);
        assert_eq!(report.wire.requests, 1);
        assert!(report.remote_tuples_read > 0);
        // The local view is restored: remote relations empty again.
        assert!(mgr.database().relation("r").unwrap().is_empty());

        // Safe-but-uncovered insert: full check passes via the wire.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![21, 30]), &mut src)
            .unwrap();
        assert!(matches!(
            report.outcome("intervals"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
    }

    #[test]
    fn unreachable_remote_degrades_to_unknown() {
        use crate::remote::UnreachableRemote;
        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();
        let mut dead = UnreachableRemote;

        // Stage 3 still certifies covered inserts without the remote.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![3, 6]), &mut dead)
            .unwrap();
        assert!(report.outcome("intervals").unwrap().holds());

        // An uncovered insert cannot be settled: Unknown, not an error.
        let report = mgr
            .check_update_with_remote(&Update::insert("l", tuple![15, 25]), &mut dead)
            .unwrap();
        assert_eq!(
            report.outcome("intervals"),
            Some(Outcome::Unknown(UnknownCause::RemoteUnavailable))
        );
        assert_eq!(report.unknowns(), vec!["intervals"]);
        assert!(report.violations().is_empty());
        assert_eq!(report.full_checks, 0);
    }

    /// A three-constraint employee schema with enough data that every
    /// ladder stage is reachable.
    pub(super) fn emp_mgr() -> ConstraintManager {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db.declare("salRange", 3, Locality::Remote).unwrap();
        for (e, d, s) in [("ann", "sales", 80i64), ("bob", "toys", 95)] {
            db.insert("emp", tuple![e, d, s]).unwrap();
        }
        for d in ["sales", "toys"] {
            db.insert("dept", tuple![d]).unwrap();
            db.insert("salRange", tuple![d, 10, 200]).unwrap();
        }
        let mut mgr = ConstraintManager::new(db);
        mgr.add_constraint("referential", "panic :- emp(E,D,S) & not dept(D).")
            .unwrap();
        mgr.add_constraint(
            "pay-floor",
            "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
        )
        .unwrap();
        mgr.add_constraint(
            "pay-ceiling",
            "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
        )
        .unwrap();
        mgr
    }

    #[test]
    fn parallel_checking_matches_sequential_reports_exactly() {
        let updates = [
            Update::insert("emp", tuple!["carol", "sales", 50]), // holds
            Update::insert("emp", tuple!["dave", "ghost", 50]),  // referential violation
            Update::insert("emp", tuple!["erin", "toys", 5]),    // pay-floor violation
            Update::insert("emp", tuple!["erin", "toys", 500]),  // pay-ceiling violation
            Update::insert("dept", tuple!["garden"]),            // independent
            Update::delete("emp", tuple!["ann", "sales", 80]),   // deletion
        ];
        let mut seq = emp_mgr();
        seq.set_parallel_checking(Some(false));
        let mut par = emp_mgr();
        par.set_parallel_checking(Some(true));
        for u in &updates {
            let a = seq.check_update(u).unwrap();
            let b = par.check_update(u).unwrap();
            assert_eq!(a, b, "reports diverge on {u:?}");
        }
    }

    #[test]
    fn parallel_checking_leaves_the_database_untouched() {
        let mut mgr = emp_mgr();
        mgr.set_parallel_checking(Some(true));
        // Force the escalations this test is about: with pre-tests on,
        // every emp insert settles before stage 4.
        mgr.set_pretest_checking(Some(false));
        let before = mgr.database().total_tuples();
        let report = mgr
            .check_update(&Update::insert("emp", tuple!["dave", "ghost", 50]))
            .unwrap();
        assert_eq!(report.violations(), vec!["referential"]);
        assert_eq!(report.full_checks, 3);
        assert!(report.remote_tuples_read > 0);
        assert_eq!(mgr.database().total_tuples(), before);
    }

    #[test]
    fn violation_detection_is_sound_end_to_end() {
        // Randomized pipeline soundness: whatever the method, Holds must
        // agree with ground truth on the post-update database.
        use ccpi_datalog::constraint_violated;
        let mut mgr = intervals_mgr();
        mgr.database_mut().insert("r", tuple![7]).unwrap();
        // r(7) is inside the forbidden union [3,10]! The standing
        // assumption (constraints hold now) is violated; fix the data
        // first by removing the point.
        mgr.database_mut().delete("r", &tuple![7]).unwrap();
        mgr.database_mut().insert("r", tuple![20]).unwrap();

        let cases = [(4i64, 8i64), (15, 25), (18, 19), (20, 20), (21, 30)];
        for (a, b) in cases {
            let upd = Update::insert("l", tuple![a, b]);
            let report = mgr.check_update(&upd).unwrap();
            let outcome = report.outcome("intervals").unwrap();
            let mut after = mgr.database().clone();
            after.apply(&upd).unwrap();
            let c =
                ccpi_parser::parse_constraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.").unwrap();
            let truth = constraint_violated(&c, &after).unwrap();
            assert_eq!(!outcome.holds(), truth, "insert ({a},{b})");
        }
    }

    #[test]
    fn delta_path_decides_monotone_escalations_without_a_snapshot() {
        let mut mgr = emp_mgr();
        mgr.set_parallel_checking(Some(false));
        // This test exercises the stage-4 delta path; the compiled
        // pre-tests would settle these updates before it.
        mgr.set_pretest_checking(Some(false));
        // An uncovered emp insert escalates all three constraints; every
        // body is positive in emp, so all three ride the delta path.
        let u = Update::insert("emp", tuple!["dave", "ghost", 50]);
        let report = mgr.check_update(&u).unwrap();
        assert_eq!(report.violations(), vec!["referential"]);
        assert_eq!(report.full_checks, 3);
        for name in ["referential", "pay-floor", "pay-ceiling"] {
            assert_eq!(report.stage4_kind(name), Some(Stage4Kind::DeltaSeeded));
        }
        assert!(report.delta_tuples_joined >= 3, "one seed per constraint");
        assert_eq!(
            mgr.post_snapshot_rebuilds(),
            0,
            "an all-delta check never clones the database"
        );

        // Re-checking the same update hits the verdict cache: same
        // report, still no snapshot, nothing re-joined.
        let again = mgr.check_update(&u).unwrap();
        assert_eq!(again, report);
        for name in ["referential", "pay-floor", "pay-ceiling"] {
            assert_eq!(again.stage4_kind(name), Some(Stage4Kind::CachedVerdict));
        }
        assert_eq!(again.delta_tuples_joined, 0);
        assert_eq!(mgr.post_snapshot_rebuilds(), 0);

        // Deleting from a positively-read relation is monotone the other
        // way: decided on the delta path with zero seeds.
        let shrink = Update::delete("emp", tuple!["ann", "sales", 80]);
        let report = mgr.check_update(&shrink).unwrap();
        for (name, outcome) in &report.outcomes {
            assert!(outcome.holds(), "{name} cannot break by shrinking emp");
        }
        assert_eq!(mgr.post_snapshot_rebuilds(), 0);
    }

    #[test]
    fn post_update_snapshot_is_memoized_on_update_identity() {
        let mut mgr = emp_mgr();
        mgr.set_parallel_checking(Some(false));
        // Deleting a department settles via the exact pre-test (a local
        // emp scan) when the pipeline is on; this test is about the
        // snapshot fallback, so keep the legacy ladder.
        mgr.set_pretest_checking(Some(false));
        // Deleting a department can *create* referential violations —
        // a non-monotone case, so stage 4 takes the snapshot fallback.
        let u = Update::delete("dept", tuple!["sales"]);
        assert_eq!(mgr.post_snapshot_rebuilds(), 0);
        let r1 = mgr.check_update(&u).unwrap();
        assert_eq!(r1.outcome("referential"), Some(Outcome::Violated));
        assert_eq!(
            r1.stage4_kind("referential"),
            Some(Stage4Kind::FullSnapshot)
        );
        assert_eq!(mgr.post_snapshot_rebuilds(), 1);

        // Regression: the same update twice must not re-clone the
        // database — the verdict cache answers outright.
        let r2 = mgr.check_update(&u).unwrap();
        assert_eq!(r2, r1);
        assert_eq!(
            r2.stage4_kind("referential"),
            Some(Stage4Kind::CachedVerdict)
        );
        assert_eq!(mgr.post_snapshot_rebuilds(), 1);

        // A newly registered snapshot-path constraint checking the same
        // update reuses the memoized snapshot across calls.
        mgr.add_constraint("strict", "panic :- emp(E,D,S) & not dept(D) & S > 90.")
            .unwrap();
        let r3 = mgr.check_update(&u).unwrap();
        if r3.stage4_kind("strict") == Some(Stage4Kind::FullSnapshot) {
            assert_eq!(mgr.post_snapshot_rebuilds(), 1, "memoized on identity");
        }

        // Any database mutation invalidates the memo.
        mgr.database_mut()
            .insert("emp", tuple!["zed", "sales", 50])
            .unwrap();
        let r4 = mgr.check_update(&u).unwrap();
        assert_eq!(r4.outcome("referential"), Some(Outcome::Violated));
        assert!(
            mgr.post_snapshot_rebuilds() >= 2,
            "stale pins force a rebuild"
        );
    }

    #[test]
    fn batch_check_matches_sequential_checks() {
        let updates = [
            Update::insert("emp", tuple!["carol", "sales", 50]), // holds
            Update::insert("emp", tuple!["dave", "ghost", 50]),  // referential violation
            Update::insert("emp", tuple!["erin", "toys", 5]),    // pay-floor violation
            Update::insert("emp", tuple!["erin", "toys", 500]),  // pay-ceiling violation
            Update::insert("dept", tuple!["garden"]),            // independent
            Update::delete("emp", tuple!["ann", "sales", 80]),   // deletion
            Update::delete("dept", tuple!["sales"]),             // snapshot fallback
            Update::insert("emp", tuple!["dave", "ghost", 50]),  // duplicate → cache
        ];
        let mut seq = emp_mgr();
        seq.set_parallel_checking(Some(false));
        let want: Vec<CheckReport> = updates
            .iter()
            .map(|u| seq.check_update(u).unwrap())
            .collect();

        let mut batch = emp_mgr();
        let before = batch.database().total_tuples();
        let got = batch.check_updates(&updates).unwrap();
        assert_eq!(got.len(), want.len());
        for ((g, w), u) in got.iter().zip(&want).zip(&updates) {
            assert_eq!(g, w, "batch diverges from sequential on {u:?}");
        }
        assert_eq!(
            batch.database().total_tuples(),
            before,
            "checking a batch applies nothing"
        );
    }

    #[test]
    fn batch_hydrates_each_remote_relation_once() {
        use crate::distributed::SiteSplit;
        use crate::remote::{RemoteError, RemoteSource};
        use crate::report::WireStats;

        struct CountingSource {
            remote: Database,
            fetches: u64,
        }
        impl RemoteSource for CountingSource {
            fn fetch_relation(
                &mut self,
                pred: &str,
            ) -> Result<Vec<ccpi_storage::Tuple>, RemoteError> {
                self.fetches += 1;
                self.remote
                    .relation(pred)
                    .map(|r| r.iter().cloned().collect())
                    .ok_or_else(|| RemoteError::Protocol(format!("unknown relation {pred}")))
            }
            fn wire_stats(&self) -> WireStats {
                WireStats {
                    requests: self.fetches,
                    round_trips: self.fetches,
                    ..WireStats::default()
                }
            }
        }

        let mut db = Database::new();
        db.declare("l", 2, Locality::Local).unwrap();
        db.declare("r", 1, Locality::Remote).unwrap();
        db.insert("l", tuple![3, 6]).unwrap();
        db.insert("r", tuple![20]).unwrap();
        let split = SiteSplit::of(&db);
        let mut src = CountingSource {
            remote: split.remote,
            fetches: 0,
        };
        let mut mgr = ConstraintManager::new(SiteSplit::local_view(&db));
        mgr.add_constraint("intervals", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
            .unwrap();

        // Two escalating updates, one batch: the remote relation is
        // fetched once, attributed to the first update that needed it.
        let batch = [
            Update::insert("l", tuple![15, 25]),
            Update::insert("l", tuple![21, 30]),
        ];
        let reports = mgr.check_updates_with_remote(&batch, &mut src).unwrap();
        assert_eq!(src.fetches, 1, "one hydration for the whole batch");
        assert_eq!(reports[0].outcome("intervals"), Some(Outcome::Violated));
        assert!(matches!(
            reports[1].outcome("intervals"),
            Some(Outcome::Holds(Method::FullCheck))
        ));
        assert_eq!(reports[0].wire.requests, 1);
        assert_eq!(reports[1].wire.requests, 0);
        assert!(reports[0].remote_tuples_read > 0);
        // The local view is restored after the batch.
        assert!(mgr.database().relation("r").unwrap().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ccpi_storage::tuple;
    use proptest::prelude::*;

    /// Random updates over the employee schema, biased toward the
    /// escalation-prone emp inserts but covering deletes and the remote
    /// relations so every stage-4 path (delta, monotone-delete, snapshot
    /// fallback, cached verdict) appears in batches.
    fn update_strategy() -> impl Strategy<Value = Update> {
        let name = prop_oneof![Just("ann"), Just("bob"), Just("carol"), Just("dave")];
        let dept = prop_oneof![Just("sales"), Just("toys"), Just("ghost")];
        prop_oneof![
            (name.clone(), dept.clone(), 0i64..250)
                .prop_map(|(e, d, s)| Update::insert("emp", tuple![e, d, s])),
            (name.clone(), dept.clone(), 0i64..250)
                .prop_map(|(e, d, s)| Update::insert("emp", tuple![e, d, s])),
            (name.clone(), dept.clone(), 0i64..250)
                .prop_map(|(e, d, s)| Update::insert("emp", tuple![e, d, s])),
            (name, dept.clone(), 0i64..250)
                .prop_map(|(e, d, s)| Update::delete("emp", tuple![e, d, s])),
            dept.clone().prop_map(|d| Update::insert("dept", tuple![d])),
            dept.clone().prop_map(|d| Update::delete("dept", tuple![d])),
            (dept.clone(), 0i64..50, 100i64..300)
                .prop_map(|(d, lo, hi)| Update::insert("salRange", tuple![d, lo, hi])),
            (dept, 0i64..50, 100i64..300)
                .prop_map(|(d, lo, hi)| Update::delete("salRange", tuple![d, lo, hi])),
        ]
    }

    /// A pool of flat denial constraints mixing negation and arithmetic
    /// over the employee schema. Every subset holds on the empty
    /// database, so streams grown through admission keep the standing
    /// assumption invariant.
    const POOL: &[(&str, &str)] = &[
        ("referential", "panic :- emp(E,D,S) & not dept(D)."),
        ("floor", "panic :- emp(E,D,S) & salRange(D,L,H) & S < L."),
        ("ceiling", "panic :- emp(E,D,S) & salRange(D,L,H) & S > H."),
        ("non-negative", "panic :- emp(E,D,S) & S < 0."),
        (
            "one-salary",
            "panic :- emp(E,D1,S1) & emp(E,D2,S2) & S1 < S2.",
        ),
        ("sane-range", "panic :- salRange(D,L,H) & H < L."),
        ("ranged-dept", "panic :- salRange(D,L,H) & not dept(D)."),
    ];

    /// Twin managers over the masked constraint subset: one on the
    /// compiled pre-test pipeline (the default), one pinned to the
    /// legacy ladder.
    fn pool_managers(mask: u8) -> (ConstraintManager, ConstraintManager) {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db.declare("salRange", 3, Locality::Remote).unwrap();
        let mut fast = ConstraintManager::new(db.clone());
        let mut slow = ConstraintManager::new(db);
        slow.set_pretest_checking(Some(false));
        for (i, (name, src)) in POOL.iter().enumerate() {
            if mask & (1 << i) != 0 {
                fast.add_constraint(name, src).unwrap();
                slow.add_constraint(name, src).unwrap();
            }
        }
        (fast, slow)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// The compiled pre-test pipeline reaches exactly the verdicts
        /// the full escalation ladder reaches, on random subsets of
        /// denial constraints × random update streams grown through
        /// admission. Methods and read accounting legitimately differ
        /// between the two ladders; holds/violated must not.
        #[test]
        fn pretest_pipeline_matches_the_legacy_ladder(
            mask in 1u8..128,
            updates in prop::collection::vec(update_strategy(), 1..12),
        ) {
            let (mut fast, mut slow) = pool_managers(mask);
            for u in &updates {
                let a = fast.check_update(u).unwrap();
                let b = slow.check_update(u).unwrap();
                let va: Vec<(String, bool)> =
                    a.outcomes.iter().map(|(n, o)| (n.clone(), o.holds())).collect();
                let vb: Vec<(String, bool)> =
                    b.outcomes.iter().map(|(n, o)| (n.clone(), o.holds())).collect();
                prop_assert_eq!(va, vb, "verdicts diverged on {:?}", u);
                // Only admitted updates land, on both sides alike — the
                // pre-test's Holds leans on the standing assumption.
                if a.all_hold() {
                    fast.apply_update(u).unwrap();
                    slow.apply_update(u).unwrap();
                }
            }
        }

        /// `check_updates` of N updates ≡ N `check_update` calls, on the
        /// employee constraint set (the E6 workload's), across every
        /// stage-4 path a batch can mix.
        #[test]
        fn batch_equals_sequential_on_the_employee_constraints(
            updates in prop::collection::vec(update_strategy(), 1..8),
        ) {
            let mut seq = super::tests::emp_mgr();
            seq.set_parallel_checking(Some(false));
            let want: Vec<CheckReport> = updates
                .iter()
                .map(|u| seq.check_update(u).unwrap())
                .collect();

            let mut batch = super::tests::emp_mgr();
            let got = batch.check_updates(&updates).unwrap();
            prop_assert_eq!(got.len(), want.len());
            for ((g, w), u) in got.iter().zip(&want).zip(&updates) {
                prop_assert_eq!(g, w, "batch diverged from sequential on {:?}", u);
            }
        }
    }
}
