//! E3 — the headline claim: the complete local test's cost is independent
//! of the remote data size, while a full re-check grows with it. Sweeps
//! the remote relation size at a fixed local relation.

use ccpi_arith::{Domain, Solver};
use ccpi_bench::{forbidden_intervals, forbidden_intervals_cq, interval_database};
use ccpi_datalog::Engine;
use ccpi_ir::{Constraint, Program};
use ccpi_localtest::{complete_local_test, IcqTest};
use ccpi_storage::tuple;
use ccpi_workload::windows::{local_relation, WindowConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_remote_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_vs_full/remote_size");
    g.sample_size(10);

    let cqc = forbidden_intervals();
    let icq = IcqTest::new(&cqc, Domain::Dense).unwrap();
    let cfg = WindowConfig {
        windows: 200,
        horizon: 100_000,
        width: (10, 500),
    };
    let windows = local_relation(&cfg, &mut ccpi_workload::rng(1));
    let probe = tuple![50_000, 50_001];

    let constraint = Constraint::single(forbidden_intervals_cq().to_rule()).unwrap();
    let engine = Engine::new(Program::from(
        constraint.panic_rules().next().unwrap().clone(),
    ))
    .unwrap();

    for remote in [100usize, 1_000, 10_000, 50_000] {
        let db = interval_database(&windows, remote);
        g.bench_with_input(
            BenchmarkId::new("local_test_interval", remote),
            &remote,
            |b, _| {
                b.iter(|| black_box(icq.test(&probe, &windows)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("local_test_thm52", remote),
            &remote,
            |b, _| {
                b.iter(|| black_box(complete_local_test(&cqc, &probe, &windows, Solver::dense())));
            },
        );
        g.bench_with_input(BenchmarkId::new("full_recheck", remote), &remote, |b, _| {
            b.iter(|| {
                let mut after = db.clone();
                after.insert("l", probe.clone()).unwrap();
                black_box(engine.run(&after).derives_panic())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_remote_sweep);
criterion_main!(benches);
