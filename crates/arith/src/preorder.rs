//! Total-preorder (weak-order) enumeration — the engine of Klug's method.
//!
//! Klug \[1988\] decides containment of CQCs by considering "all orders
//! consistent with the arithmetic constraints" of the containing side's
//! canonical databases. A *weak order* partitions the terms into blocks of
//! equals and linearly orders the blocks; over a dense domain, the
//! conjunctions of comparisons that can hold of a tuple of terms are in 1-1
//! correspondence with weak orders.
//!
//! [`enumerate`] generates every weak order of a term set that is
//! consistent with a given conjunction (and with the fixed order of the
//! constants in the set). The count is bounded by the ordered Bell numbers
//! (1, 1, 3, 13, 75, 541, 4683, 47293, …) — the exponential blowup the
//! paper's §5 "Comparison With Klug's Approach" attributes to Klug's
//! method and that the `thm51_vs_klug` benchmark measures.

use ccpi_ir::{Comparison, Term, Value};
use std::collections::HashMap;

/// A weak order over a set of terms: `blocks[i]` holds the terms of rank
/// `i`; lower rank = smaller value. Terms within a block are equal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeakOrder {
    /// Blocks of mutually equal terms, in increasing order.
    pub blocks: Vec<Vec<Term>>,
}

impl WeakOrder {
    /// The rank of a term, if present.
    pub fn rank(&self, t: &Term) -> Option<usize> {
        self.blocks.iter().position(|b| b.iter().any(|u| u == t))
    }

    /// Evaluates a comparison under this weak order. Both terms must be
    /// present (ground comparisons are evaluated directly even when the
    /// constants are absent from the order).
    ///
    /// Returns `None` if a term is missing.
    pub fn eval(&self, c: &Comparison) -> Option<bool> {
        if let Some(v) = c.eval_ground() {
            return Some(v);
        }
        let l = self.rank(&c.lhs)?;
        let r = self.rank(&c.rhs)?;
        Some(c.op.eval(&l, &r))
    }

    /// Evaluates a conjunction; `None` if any term is missing.
    pub fn eval_all(&self, cs: &[Comparison]) -> Option<bool> {
        let mut out = true;
        for c in cs {
            out &= self.eval(c)?;
        }
        Some(out)
    }

    /// Number of terms in the order.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// `true` when the order covers no terms.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Enumerates every weak order of `terms` (duplicates ignored) that
/// * keeps distinct constants in distinct blocks, ordered by value, and
/// * satisfies every comparison in `constraint` whose terms are all drawn
///   from `terms` (comparisons mentioning other terms are ignored —
///   callers should pass the full relevant term set).
///
/// Dense-domain semantics: any gap between constants can host blocks. (For
/// integer semantics Klug's correspondence between weak orders and
/// satisfiable conjunctions breaks — e.g. no block fits strictly between
/// 1 and 2 — so the Klug baseline in `ccpi-containment` is dense-only,
/// exactly like the original paper.)
pub fn enumerate(terms: &[Term], constraint: &[Comparison]) -> Vec<WeakOrder> {
    // Deduplicate, keeping first-occurrence order.
    let mut uniq: Vec<Term> = Vec::new();
    for t in terms {
        if !uniq.contains(t) {
            uniq.push(t.clone());
        }
    }
    // A constraint is relevant when all its *variables* are in the term
    // set; constants it mentions are auto-added to the set so the
    // constraint is actually enforced.
    let relevant: Vec<&Comparison> = constraint
        .iter()
        .filter(|c| {
            [&c.lhs, &c.rhs]
                .into_iter()
                .all(|t| t.is_const() || uniq.contains(t))
        })
        .collect();
    for c in &relevant {
        for t in [&c.lhs, &c.rhs] {
            if t.is_const() && !uniq.contains(t) {
                uniq.push(t.clone());
            }
        }
    }

    let mut out = Vec::new();
    let mut current = WeakOrder { blocks: Vec::new() };
    place(&uniq, 0, &relevant, &mut current, &mut out);
    out
}

fn place(
    terms: &[Term],
    next: usize,
    constraint: &[&Comparison],
    current: &mut WeakOrder,
    out: &mut Vec<WeakOrder>,
) {
    if next == terms.len() {
        if consistent(current, constraint, true) {
            out.push(current.clone());
        }
        return;
    }
    let t = &terms[next];
    // Join an existing block…
    for i in 0..current.blocks.len() {
        current.blocks[i].push(t.clone());
        if consistent(current, constraint, false) {
            place(terms, next + 1, constraint, current, out);
        }
        current.blocks[i].pop();
    }
    // …or open a new block at any position.
    for i in 0..=current.blocks.len() {
        current.blocks.insert(i, vec![t.clone()]);
        if consistent(current, constraint, false) {
            place(terms, next + 1, constraint, current, out);
        }
        current.blocks.remove(i);
    }
}

/// Checks constant ordering and (partially placed) constraints.
fn consistent(order: &WeakOrder, constraint: &[&Comparison], complete: bool) -> bool {
    // Constants: at most one distinct value per block, blocks ordered.
    let mut last_const: Option<&Value> = None;
    for block in &order.blocks {
        let mut block_const: Option<&Value> = None;
        for t in block {
            if let Term::Const(v) = t {
                match block_const {
                    Some(prev) if prev != v => return false,
                    _ => block_const = Some(v),
                }
            }
        }
        if let Some(v) = block_const {
            if let Some(prev) = last_const {
                if prev >= v {
                    return false;
                }
            }
            last_const = Some(v);
        }
    }
    // Constraints whose terms are all placed must hold.
    let mut ranks: HashMap<&Term, usize> = HashMap::new();
    for (i, block) in order.blocks.iter().enumerate() {
        for t in block {
            ranks.insert(t, i);
        }
    }
    for c in constraint {
        if let Some(v) = c.eval_ground() {
            if complete && !v {
                return false;
            }
            continue;
        }
        let (Some(&l), Some(&r)) = (ranks.get(&c.lhs), ranks.get(&c.rhs)) else {
            continue;
        };
        if !c.op.eval(&l, &r) {
            return false;
        }
    }
    true
}

/// The number of weak orders of an `n`-set (ordered Bell / Fubini numbers).
/// Provided for tests and the Klug benchmark's expected-work computation.
pub fn fubini(n: usize) -> u128 {
    // a(n) = sum_{k=1..n} C(n,k) a(n-k); a(0)=1.
    let mut a = vec![0u128; n + 1];
    a[0] = 1;
    for m in 1..=n {
        let mut total = 0u128;
        let mut binom = 1u128; // C(m,1) built incrementally
        for k in 1..=m {
            binom = if k == 1 {
                m as u128
            } else {
                binom * ((m - k + 1) as u128) / (k as u128)
            };
            total += binom * a[m - k];
        }
        a[m] = total;
    }
    a[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_ir::CompOp;

    fn v(n: &str) -> Term {
        Term::var(n)
    }
    fn i(x: i64) -> Term {
        Term::int(x)
    }
    fn cmp(l: Term, op: CompOp, r: Term) -> Comparison {
        Comparison::new(l, op, r)
    }

    #[test]
    fn fubini_numbers() {
        assert_eq!(fubini(0), 1);
        assert_eq!(fubini(1), 1);
        assert_eq!(fubini(2), 3);
        assert_eq!(fubini(3), 13);
        assert_eq!(fubini(4), 75);
        assert_eq!(fubini(5), 541);
        assert_eq!(fubini(6), 4683);
    }

    #[test]
    fn unconstrained_enumeration_counts_fubini() {
        for n in 0..5 {
            let terms: Vec<Term> = (0..n).map(|k| v(&format!("X{k}"))).collect();
            let orders = enumerate(&terms, &[]);
            assert_eq!(orders.len() as u128, fubini(n), "n={n}");
        }
    }

    #[test]
    fn two_variables_three_orders() {
        let orders = enumerate(&[v("X"), v("Y")], &[]);
        assert_eq!(orders.len(), 3); // X<Y, X=Y, X>Y
    }

    #[test]
    fn constraint_filters_orders() {
        let orders = enumerate(&[v("X"), v("Y")], &[cmp(v("X"), CompOp::Lt, v("Y"))]);
        assert_eq!(orders.len(), 1);
        let o = &orders[0];
        assert!(o.rank(&v("X")).unwrap() < o.rank(&v("Y")).unwrap());
    }

    #[test]
    fn le_keeps_two_orders() {
        let orders = enumerate(&[v("X"), v("Y")], &[cmp(v("X"), CompOp::Le, v("Y"))]);
        assert_eq!(orders.len(), 2); // X<Y and X=Y
    }

    #[test]
    fn constants_fixed_in_place() {
        // X with constants 1 and 2: X<1, X=1, 1<X<2, X=2, X>2 → 5 orders.
        let orders = enumerate(&[v("X"), i(1), i(2)], &[]);
        assert_eq!(orders.len(), 5);
        for o in &orders {
            assert!(o.rank(&i(1)).unwrap() < o.rank(&i(2)).unwrap());
        }
    }

    #[test]
    fn constants_cannot_share_block() {
        let orders = enumerate(&[i(1), i(2)], &[]);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].blocks.len(), 2);
    }

    #[test]
    fn eval_under_order() {
        let orders = enumerate(&[v("X"), v("Y")], &[cmp(v("X"), CompOp::Lt, v("Y"))]);
        let o = &orders[0];
        assert_eq!(o.eval(&cmp(v("X"), CompOp::Lt, v("Y"))), Some(true));
        assert_eq!(o.eval(&cmp(v("Y"), CompOp::Le, v("X"))), Some(false));
        assert_eq!(o.eval(&cmp(v("X"), CompOp::Ne, v("Y"))), Some(true));
        // Missing term.
        assert_eq!(o.eval(&cmp(v("X"), CompOp::Lt, v("Z"))), None);
        // Ground comparisons need no placement.
        assert_eq!(o.eval(&cmp(i(1), CompOp::Lt, i(2))), Some(true));
    }

    #[test]
    fn unsat_constraint_gives_no_orders() {
        let orders = enumerate(
            &[v("X"), v("Y")],
            &[
                cmp(v("X"), CompOp::Lt, v("Y")),
                cmp(v("Y"), CompOp::Lt, v("X")),
            ],
        );
        assert!(orders.is_empty());
    }

    #[test]
    fn enumeration_agrees_with_solver_on_satisfiability() {
        // For a batch of small conjunctions: enumerate() nonempty iff dense-sat.
        use crate::sat_dense;
        let cases: Vec<Vec<Comparison>> = vec![
            vec![
                cmp(v("X"), CompOp::Le, v("Y")),
                cmp(v("Y"), CompOp::Le, v("X")),
            ],
            vec![
                cmp(v("X"), CompOp::Lt, v("Y")),
                cmp(v("Y"), CompOp::Lt, v("X")),
            ],
            vec![cmp(v("X"), CompOp::Le, i(1)), cmp(i(2), CompOp::Le, v("X"))],
            vec![cmp(i(1), CompOp::Lt, v("X")), cmp(v("X"), CompOp::Lt, i(2))],
            vec![cmp(v("X"), CompOp::Ne, v("Y"))],
            vec![
                cmp(v("X"), CompOp::Le, v("Y")),
                cmp(v("Y"), CompOp::Le, v("X")),
                cmp(v("X"), CompOp::Ne, v("Y")),
            ],
        ];
        for cs in cases {
            let mut terms: Vec<Term> = Vec::new();
            for c in &cs {
                for t in [&c.lhs, &c.rhs] {
                    if !terms.contains(t) {
                        terms.push(t.clone());
                    }
                }
            }
            let orders = enumerate(&terms, &cs);
            assert_eq!(!orders.is_empty(), sat_dense(&cs), "{cs:?}");
        }
    }

    #[test]
    fn duplicate_terms_are_deduped() {
        let orders = enumerate(&[v("X"), v("X"), v("Y")], &[]);
        assert_eq!(orders.len(), 3);
    }
}
