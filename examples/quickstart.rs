//! Quickstart: register constraints, process updates, watch the
//! escalation ladder pick the cheapest sufficient check.
//!
//! Run with: `cargo run --example quickstart`

use ccpi_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-site schema: employees live at this site; the department
    // catalog and salary policy live at headquarters (remote).
    let mut db = Database::new();
    db.declare("emp", 3, Locality::Local)?;
    db.declare("dept", 1, Locality::Remote)?;
    db.declare("salRange", 3, Locality::Remote)?;

    db.insert("emp", tuple!["jones", "shoe", 50])?;
    db.insert("dept", tuple!["shoe"])?;
    db.insert("dept", tuple!["toy"])?;
    db.insert("salRange", tuple!["shoe", 40, 120])?;
    db.insert("salRange", tuple!["toy", 30, 100])?;

    let mut mgr = ConstraintManager::new(db);

    // Example 2.2 (referential integrity) and Example 2.3 (salary range).
    mgr.add_constraint("referential", "panic :- emp(E,D,S) & not dept(D).")?;
    mgr.add_constraint(
        "salary-range",
        "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.\n\
         panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
    )?;

    let updates = [
        // Adding a department can never violate either constraint: the
        // §4 independence test certifies it without reading any data.
        Update::insert("dept", tuple!["garden"]),
        // Removing an employee is also safe for both.
        Update::delete("emp", tuple!["jones", "shoe", 50]),
        // Hiring into a known department with a plausible salary: the
        // tests can't certify this locally (dept and salRange are
        // remote), so the full check runs — and passes.
        Update::insert("emp", tuple!["meyer", "toy", 60]),
        // Hiring into a department that does not exist: violation.
        Update::insert("emp", tuple!["quinn", "submarines", 55]),
    ];

    for update in &updates {
        println!("update {update}:");
        let report = mgr.check_update(update)?;
        println!("{report}");
        if report.all_hold() {
            mgr.database_mut().apply(update)?;
            println!("  -> applied\n");
        } else {
            println!("  -> rejected ({:?})\n", report.violations());
        }
    }

    // The registered constraints and their Fig. 2.1 classes.
    println!("registered constraints:");
    for (name, class) in mgr.constraints() {
        println!("  {name}: {class}");
    }
    Ok(())
}
