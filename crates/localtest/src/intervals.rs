//! Interval unions with open/closed/unbounded endpoints.
//!
//! The direct data structure behind the forbidden-intervals local test
//! (Example 5.3 / §6): a set of intervals over the ordered domain,
//! normalized into disjoint maximal intervals, answering *coverage*
//! queries — exactly what Fig. 6.1's recursive datalog program computes,
//! here as an `O(n log n)` sweep. The Theorem 6.1 proof sketch's endpoint
//! zoo ("intervals may be open to infinity … open or closed at either
//! end") is represented by [`Bound`].
//!
//! Both the dense and the integer interpretation are supported: over ℤ,
//! open integer bounds normalize to closed ones (`(1,…` ⇒ `[2,…`) and
//! adjacent intervals (`…,2]` + `[3,…`) merge.

use ccpi_arith::Domain;
use ccpi_ir::Value;
use std::cmp::Ordering;
use std::fmt;

/// An interval endpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// `-∞` (only valid as a lower bound).
    NegInf,
    /// Closed endpoint (value included).
    Incl(Value),
    /// Open endpoint (value excluded).
    Excl(Value),
    /// `+∞` (only valid as an upper bound).
    PosInf,
}

impl Bound {
    /// Orders two *lower* bounds by inclusiveness: smaller = covers more.
    pub fn lo_cmp(&self, other: &Bound) -> Ordering {
        lo_key(self).cmp(&lo_key(other))
    }

    /// Orders two *upper* bounds by inclusiveness: larger = covers more.
    pub fn hi_cmp(&self, other: &Bound) -> Ordering {
        hi_key(self).cmp(&hi_key(other))
    }
}

/// (rank, value, strictness) key for lower bounds.
fn lo_key(b: &Bound) -> (u8, Option<&Value>, u8) {
    match b {
        Bound::NegInf => (0, None, 0),
        Bound::Incl(v) => (1, Some(v), 0),
        Bound::Excl(v) => (1, Some(v), 1),
        Bound::PosInf => (2, None, 0),
    }
}

/// Key for upper bounds: open sorts *below* closed at the same value.
fn hi_key(b: &Bound) -> (u8, Option<&Value>, u8) {
    match b {
        Bound::NegInf => (0, None, 0),
        Bound::Excl(v) => (1, Some(v), 0),
        Bound::Incl(v) => (1, Some(v), 1),
        Bound::PosInf => (2, None, 0),
    }
}

/// An interval of the ordered domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower bound (`NegInf`, `Incl`, or `Excl`).
    pub lo: Bound,
    /// Upper bound (`Incl`, `Excl`, or `PosInf`).
    pub hi: Bound,
}

impl Interval {
    /// Builds an interval; panics on `PosInf` lower / `NegInf` upper.
    pub fn new(lo: Bound, hi: Bound) -> Self {
        assert!(!matches!(lo, Bound::PosInf), "+∞ is not a lower bound");
        assert!(!matches!(hi, Bound::NegInf), "-∞ is not an upper bound");
        Interval { lo, hi }
    }

    /// `[a, b]`.
    pub fn closed(a: impl Into<Value>, b: impl Into<Value>) -> Self {
        Interval::new(Bound::Incl(a.into()), Bound::Incl(b.into()))
    }

    /// `(a, b)`.
    pub fn open(a: impl Into<Value>, b: impl Into<Value>) -> Self {
        Interval::new(Bound::Excl(a.into()), Bound::Excl(b.into()))
    }

    /// `(-∞, ∞)` — the whole domain.
    pub fn everything() -> Self {
        Interval::new(Bound::NegInf, Bound::PosInf)
    }

    /// The single point `[v, v]`.
    pub fn point(v: impl Into<Value>) -> Self {
        let v = v.into();
        Interval::new(Bound::Incl(v.clone()), Bound::Incl(v))
    }

    /// Is the interval empty under the given domain?
    pub fn is_empty(&self, domain: Domain) -> bool {
        let iv = self.normalized(domain);
        match (&iv.lo, &iv.hi) {
            (Bound::NegInf, _) | (_, Bound::PosInf) => false,
            (Bound::Incl(a), Bound::Incl(b)) => a > b,
            (Bound::Incl(a), Bound::Excl(b)) | (Bound::Excl(a), Bound::Incl(b)) => a >= b,
            (Bound::Excl(a), Bound::Excl(b)) => {
                // Dense: (a,b) nonempty iff a < b. (Integer open bounds
                // were normalized away unless the values are symbolic.)
                a >= b
            }
            _ => unreachable!("constructor invariants"),
        }
    }

    /// Does the interval contain the value?
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::NegInf => true,
            Bound::Incl(a) => a <= v,
            Bound::Excl(a) => a < v,
            Bound::PosInf => false,
        };
        let hi_ok = match &self.hi {
            Bound::PosInf => true,
            Bound::Incl(b) => v <= b,
            Bound::Excl(b) => v < b,
            Bound::NegInf => false,
        };
        lo_ok && hi_ok
    }

    /// Integer normalization: `(1, …` ⇒ `[2, …` and `…, 5)` ⇒ `…, 4]`
    /// (only for integer values; symbolic endpoints stay as-is).
    pub fn normalized(&self, domain: Domain) -> Interval {
        if domain != Domain::Integer {
            return self.clone();
        }
        let lo = match &self.lo {
            Bound::Excl(Value::Int(a)) => Bound::Incl(Value::Int(a.saturating_add(1))),
            other => other.clone(),
        };
        let hi = match &self.hi {
            Bound::Excl(Value::Int(b)) => Bound::Incl(Value::Int(b.saturating_sub(1))),
            other => other.clone(),
        };
        Interval { lo, hi }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::NegInf => write!(f, "(-inf,")?,
            Bound::Incl(v) => write!(f, "[{v},")?,
            Bound::Excl(v) => write!(f, "({v},")?,
            Bound::PosInf => unreachable!(),
        }
        match &self.hi {
            Bound::PosInf => write!(f, "inf)"),
            Bound::Incl(v) => write!(f, "{v}]"),
            Bound::Excl(v) => write!(f, "{v})"),
            Bound::NegInf => unreachable!(),
        }
    }
}

/// A normalized union of intervals: disjoint, maximal, sorted.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    domain: Domain,
    /// Disjoint maximal intervals in increasing order.
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// An empty set under the given domain.
    pub fn new(domain: Domain) -> Self {
        IntervalSet {
            domain,
            ivs: Vec::new(),
        }
    }

    /// Builds from any iterator of intervals.
    pub fn from_intervals(domain: Domain, ivs: impl IntoIterator<Item = Interval>) -> Self {
        let mut s = IntervalSet::new(domain);
        for iv in ivs {
            s.insert(iv);
        }
        s
    }

    /// The disjoint maximal intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// `true` when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Adds an interval, re-normalizing.
    pub fn insert(&mut self, iv: Interval) {
        let iv = iv.normalized(self.domain);
        if iv.is_empty(self.domain) {
            return;
        }
        self.ivs.push(iv);
        self.normalize();
    }

    fn normalize(&mut self) {
        self.ivs
            .sort_by(|a, b| a.lo.lo_cmp(&b.lo).then(a.hi.hi_cmp(&b.hi)));
        let mut out: Vec<Interval> = Vec::with_capacity(self.ivs.len());
        for iv in self.ivs.drain(..) {
            match out.last_mut() {
                Some(last) if touches_or_overlaps(&last.hi, &iv.lo, self.domain) => {
                    if last.hi.hi_cmp(&iv.hi) == Ordering::Less {
                        last.hi = iv.hi;
                    }
                }
                _ => out.push(iv),
            }
        }
        self.ivs = out;
    }

    /// Does the union cover the whole of `iv`?
    ///
    /// Because the set is normalized into disjoint maximal intervals, `iv`
    /// is covered iff a single member contains it.
    pub fn covers(&self, iv: &Interval) -> bool {
        let iv = iv.normalized(self.domain);
        if iv.is_empty(self.domain) {
            return true;
        }
        self.ivs.iter().any(|m| {
            m.lo.lo_cmp(&iv.lo) != Ordering::Greater && m.hi.hi_cmp(&iv.hi) != Ordering::Less
        })
    }

    /// Does the union contain the point `v`?
    pub fn contains(&self, v: &Value) -> bool {
        self.ivs.iter().any(|m| m.contains(v))
    }
}

/// Is the union of `…, hi` and `lo, …` contiguous (no gap)?
fn touches_or_overlaps(hi: &Bound, lo: &Bound, domain: Domain) -> bool {
    match (hi, lo) {
        (Bound::PosInf, _) | (_, Bound::NegInf) => true,
        (Bound::Incl(a), Bound::Incl(b)) => {
            if domain == Domain::Integer {
                if let (Value::Int(a), Value::Int(b)) = (a, b) {
                    // …,a] ∪ [b,… contiguous over ℤ iff b ≤ a + 1.
                    return *b <= a.saturating_add(1);
                }
            }
            b <= a
        }
        (Bound::Incl(a), Bound::Excl(b)) => b <= a,
        (Bound::Excl(a), Bound::Incl(b)) => b <= a,
        // …,a) ∪ (b,… leaves the point a uncovered when b == a.
        (Bound::Excl(a), Bound::Excl(b)) => b < a,
        _ => unreachable!("constructor invariants"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense(ivs: &[Interval]) -> IntervalSet {
        IntervalSet::from_intervals(Domain::Dense, ivs.iter().cloned())
    }

    #[test]
    fn example_5_3_coverage() {
        // {[3,6], [5,10]} covers [4,8] but not [2,8] or [4,11].
        let s = dense(&[Interval::closed(3, 6), Interval::closed(5, 10)]);
        assert_eq!(s.intervals().len(), 1); // merged into [3,10]
        assert!(s.covers(&Interval::closed(4, 8)));
        assert!(!s.covers(&Interval::closed(2, 8)));
        assert!(!s.covers(&Interval::closed(4, 11)));
    }

    #[test]
    fn disjoint_intervals_stay_disjoint() {
        let s = dense(&[Interval::closed(1, 2), Interval::closed(5, 6)]);
        assert_eq!(s.intervals().len(), 2);
        assert!(!s.covers(&Interval::closed(2, 5)));
        assert!(s.covers(&Interval::closed(5, 6)));
    }

    #[test]
    fn touching_closed_intervals_merge() {
        let s = dense(&[Interval::closed(1, 3), Interval::closed(3, 6)]);
        assert_eq!(s.intervals().len(), 1);
        assert!(s.covers(&Interval::closed(1, 6)));
    }

    #[test]
    fn open_touch_leaves_a_hole() {
        // [1,3) ∪ (3,6]: the point 3 is uncovered.
        let s = dense(&[
            Interval::new(Bound::Incl(Value::int(1)), Bound::Excl(Value::int(3))),
            Interval::new(Bound::Excl(Value::int(3)), Bound::Incl(Value::int(6))),
        ]);
        assert_eq!(s.intervals().len(), 2);
        assert!(!s.covers(&Interval::closed(2, 4)));
        assert!(!s.contains(&Value::int(3)));
        assert!(s.contains(&Value::int(2)));
    }

    #[test]
    fn half_open_touch_merges() {
        // [1,3) ∪ [3,6] = [1,6].
        let s = dense(&[
            Interval::new(Bound::Incl(Value::int(1)), Bound::Excl(Value::int(3))),
            Interval::closed(3, 6),
        ]);
        assert_eq!(s.intervals().len(), 1);
        assert!(s.covers(&Interval::closed(1, 6)));
    }

    #[test]
    fn unbounded_ends() {
        let s = dense(&[
            Interval::new(Bound::NegInf, Bound::Incl(Value::int(0))),
            Interval::new(Bound::Incl(Value::int(10)), Bound::PosInf),
        ]);
        assert!(s.covers(&Interval::closed(-100, -1)));
        assert!(s.covers(&Interval::new(Bound::Incl(Value::int(11)), Bound::PosInf)));
        assert!(!s.covers(&Interval::closed(0, 10)));
        let all = dense(&[Interval::everything()]);
        assert!(all.covers(&Interval::everything()));
    }

    #[test]
    fn integer_adjacency_merges() {
        let s = IntervalSet::from_intervals(
            Domain::Integer,
            [Interval::closed(1, 2), Interval::closed(3, 5)],
        );
        assert_eq!(s.intervals().len(), 1);
        assert!(s.covers(&Interval::closed(1, 5)));
        // Dense does not merge them.
        let d = dense(&[Interval::closed(1, 2), Interval::closed(3, 5)]);
        assert!(!d.covers(&Interval::closed(1, 5)));
    }

    #[test]
    fn integer_open_bounds_normalize() {
        // (1,4) over ℤ is [2,3].
        let iv = Interval::open(1, 4).normalized(Domain::Integer);
        assert_eq!(iv, Interval::closed(2, 3));
        // (1,2) over ℤ is empty.
        assert!(Interval::open(1, 2).is_empty(Domain::Integer));
        assert!(!Interval::open(1, 2).is_empty(Domain::Dense));
    }

    #[test]
    fn empty_intervals_are_ignored() {
        let s = dense(&[Interval::closed(5, 4)]);
        assert!(s.is_empty());
        assert!(s.covers(&Interval::closed(5, 4))); // empty ⊆ anything
    }

    #[test]
    fn point_intervals() {
        let s = dense(&[Interval::point(7)]);
        assert!(s.contains(&Value::int(7)));
        assert!(!s.contains(&Value::int(8)));
        assert!(s.covers(&Interval::point(7)));
        assert!(!s.covers(&Interval::closed(7, 8)));
    }

    #[test]
    fn string_valued_endpoints() {
        let s = dense(&[Interval::closed("apple", "mango")]);
        assert!(s.contains(&Value::str("banana")));
        assert!(!s.contains(&Value::str("zebra")));
        assert!(s.covers(&Interval::closed("banana", "kiwi")));
    }

    // Differential test: IntervalSet::covers agrees with brute-force
    // point sampling over the integer domain.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn integer_coverage_matches_pointwise(
            base in prop::collection::vec((0i64..20, 0i64..20), 0..6),
            q in (0i64..20, 0i64..20),
        ) {
            let s = IntervalSet::from_intervals(
                Domain::Integer,
                base.iter().map(|&(a, b)| Interval::closed(a, b)),
            );
            let query = Interval::closed(q.0, q.1);
            let brute = (q.0..=q.1).all(|z| {
                base.iter().any(|&(a, b)| a <= z && z <= b)
            });
            prop_assert_eq!(s.covers(&query), brute, "{:?} covers {:?}", base, q);
        }

        #[test]
        fn contains_matches_member_intervals(
            base in prop::collection::vec((0i64..20, 0i64..20), 0..6),
            z in 0i64..20,
        ) {
            let s = IntervalSet::from_intervals(
                Domain::Dense,
                base.iter().map(|&(a, b)| Interval::closed(a, b)),
            );
            let brute = base.iter().any(|&(a, b)| a <= z && z <= b);
            prop_assert_eq!(s.contains(&Value::int(z)), brute);
        }
    }
}
