//! Durable manager state: write-ahead log and checkpoint codec.
//!
//! The managers in `ccpi-core` acknowledge an update only after a record
//! describing it is on disk (fsync'd), so a crash never loses an
//! acknowledged update; periodic checkpoints bound replay time. This
//! module owns the on-disk formats and the low-level write pipeline —
//! including the fault-injection hooks the crash soak drives.
//!
//! ## WAL format
//!
//! ```text
//! file    := magic "CCPIWAL1", frame*
//! frame   := u32 sealed-length, sealed
//! sealed  := u64 nonce, body, u64 fnv1a64(nonce ++ body)
//! body    := tag u8, record fields (see [`WalRecord`])
//! ```
//!
//! The sealing is the `ccpi-site` wire-v2 idiom: the FNV-1a trailer
//! detects torn writes and bit rot, and the nonce — here the frame's
//! index in the log — rejects duplicated or re-ordered frames, which a
//! checksum alone would accept. Replay stops at the first frame that is
//! truncated, fails its checksum, or carries the wrong nonce: everything
//! before it is the **crash-consistent prefix**, everything after was
//! never acknowledged.
//!
//! ## Checkpoint format
//!
//! A checkpoint is one sealed frame (magic `CCPICKP1`) holding the full
//! database, the registered constraint sources, per-constraint delta-plan
//! signatures, and the exportable stage-4 verdicts. It is written to
//! `checkpoint.bin.tmp`, fsync'd, then renamed over `checkpoint.bin` —
//! readers see the old checkpoint or the new one, never a torn one. A
//! leftover `.tmp` (crash before the rename) is ignored and removed at
//! recovery.
//!
//! ## Fault injection
//!
//! Every durable write is metered through a [`DiskGuard`]. An unarmed
//! guard just counts bytes; an armed one stops the pipeline after a
//! seeded byte budget — mid-record, mid-checkpoint, even mid-header —
//! leaving exactly the bytes a real crash at that offset would leave.
//! The crash soak in `ccpi-bench` replays the same workload against a
//! schedule of budgets and asserts recovery from every prefix.

use crate::database::{Database, Locality};
use crate::update::Update;
use crate::wirefmt::{self, WireError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

/// WAL file name inside a durable directory.
pub const WAL_FILE: &str = "wal.bin";
/// Checkpoint file name inside a durable directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// Scratch name a checkpoint is staged under before its atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.bin.tmp";

const WAL_MAGIC: &[u8; 8] = b"CCPIWAL1";
const CKPT_MAGIC: &[u8; 8] = b"CCPICKP1";

/// Upper bound on one sealed frame; a corrupt length prefix must not
/// trigger a giant allocation before the bounds check.
const MAX_FRAME: u64 = 256 * 1024 * 1024;

/// Durability-layer failures.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// A frame or checkpoint failed to decode (corruption that is not a
    /// recoverable torn tail — e.g. a damaged checkpoint body).
    Wire(WireError),
    /// A file did not start with the expected magic.
    BadMagic,
    /// The injected crash budget ran out: the pipeline must abort exactly
    /// as if the process had died at this byte offset.
    CrashInjected,
    /// A previous append or sync failed and may have left a torn frame on
    /// disk; the writer refuses every further append until the log is
    /// reopened through replay + [`WalWriter::resume`]. Without this,
    /// records appended after the failure would sit past the torn frame —
    /// acknowledged as durable, silently dropped at replay.
    Poisoned,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Wire(e) => write!(f, "wal decode error: {e}"),
            WalError::BadMagic => write!(f, "bad file magic"),
            WalError::CrashInjected => write!(f, "injected crash: disk budget exhausted"),
            WalError::Poisoned => write!(
                f,
                "wal writer poisoned by an earlier write failure; reopen via recovery"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}
impl From<WireError> for WalError {
    fn from(e: WireError) -> Self {
        WalError::Wire(e)
    }
}

/// Meters every durable write, and — when armed with a byte budget —
/// injects a crash at an exact offset into the write stream.
///
/// The byte stream is deterministic for a given workload (lengths never
/// depend on randomness), so an offset observed in a crash-free
/// reference run names the same point in a re-run. An fsync and a rename
/// each charge one byte, giving the schedule kill points *between*
/// writing and syncing and *between* staging and renaming a checkpoint.
#[derive(Debug, Default)]
pub struct DiskGuard {
    /// Bytes granted so far (writes, plus one per fsync/rename).
    pub written: u64,
    budget: Option<u64>,
    drop_unsynced: bool,
}

impl DiskGuard {
    /// An unarmed guard: counts bytes, never crashes.
    pub fn new() -> Self {
        DiskGuard::default()
    }

    /// A guard that injects a crash once `budget` bytes have been
    /// granted. With `drop_unsynced`, bytes written since the last fsync
    /// are discarded at the crash — modeling a page cache that never
    /// reached the platter; without it they survive as a torn tail.
    pub fn with_budget(budget: u64, drop_unsynced: bool) -> Self {
        DiskGuard {
            written: 0,
            budget: Some(budget),
            drop_unsynced,
        }
    }

    /// Should this crash also discard unsynced bytes?
    pub fn drops_unsynced(&self) -> bool {
        self.drop_unsynced
    }

    /// Has the injected crash fired?
    pub fn crashed(&self) -> bool {
        self.budget == Some(0)
    }

    /// Grants up to `n` bytes; fewer means the crash fires after the
    /// returned count is written.
    fn grant(&mut self, n: u64) -> u64 {
        let allowed = match self.budget.as_mut() {
            None => n,
            Some(b) => {
                let allowed = n.min(*b);
                *b -= allowed;
                allowed
            }
        };
        self.written += allowed;
        allowed
    }
}

/// One durable log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A committed update. `seq` increases by one per applied update
    /// across the store's lifetime; replay skips records already folded
    /// into the checkpoint.
    Apply {
        /// Lifetime sequence number of the apply.
        seq: u64,
        /// The update itself.
        update: Update,
    },
    /// A relation declared after the last checkpoint.
    Declare {
        /// Relation name.
        name: String,
        /// Arity.
        arity: usize,
        /// Local or remote.
        locality: Locality,
    },
    /// A constraint registered after the last checkpoint.
    AddConstraint {
        /// Registration name.
        name: String,
        /// Canonical constraint source text.
        source: String,
    },
}

fn encode_update(u: &Update, out: &mut Vec<u8>) {
    out.push(if u.is_insert() { 0 } else { 1 });
    wirefmt::encode_str(u.pred().as_str(), out);
    wirefmt::encode_tuple(u.tuple(), out);
}

fn decode_update(buf: &[u8], pos: &mut usize) -> Result<Update, WireError> {
    let kind = take_u8(buf, pos)?;
    let pred = wirefmt::decode_str(buf, pos)?;
    let tuple = wirefmt::decode_tuple(buf, pos)?;
    match kind {
        0 => Ok(Update::insert(pred, tuple)),
        1 => Ok(Update::delete(pred, tuple)),
        t => Err(WireError::BadTag(t)),
    }
}

fn encode_locality(l: Locality, out: &mut Vec<u8>) {
    out.push(match l {
        Locality::Local => 0,
        Locality::Remote => 1,
    });
}

fn decode_locality(buf: &[u8], pos: &mut usize) -> Result<Locality, WireError> {
    match take_u8(buf, pos)? {
        0 => Ok(Locality::Local),
        1 => Ok(Locality::Remote),
        t => Err(WireError::BadTag(t)),
    }
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Apply { seq, update } => {
                out.push(0);
                wirefmt::encode_u64(*seq, &mut out);
                encode_update(update, &mut out);
            }
            WalRecord::Declare {
                name,
                arity,
                locality,
            } => {
                out.push(1);
                wirefmt::encode_str(name, &mut out);
                wirefmt::encode_u32(*arity as u32, &mut out);
                encode_locality(*locality, &mut out);
            }
            WalRecord::AddConstraint { name, source } => {
                out.push(2);
                wirefmt::encode_str(name, &mut out);
                wirefmt::encode_str(source, &mut out);
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<WalRecord, WireError> {
        let mut pos = 0;
        let rec = match take_u8(buf, &mut pos)? {
            0 => WalRecord::Apply {
                seq: wirefmt::decode_u64(buf, &mut pos)?,
                update: decode_update(buf, &mut pos)?,
            },
            1 => WalRecord::Declare {
                name: wirefmt::decode_str(buf, &mut pos)?,
                arity: wirefmt::decode_u32(buf, &mut pos)? as usize,
                locality: decode_locality(buf, &mut pos)?,
            },
            2 => WalRecord::AddConstraint {
                name: wirefmt::decode_str(buf, &mut pos)?,
                source: wirefmt::decode_str(buf, &mut pos)?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        if pos != buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(rec)
    }
}

fn take_u8(buf: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    if *pos >= buf.len() {
        return Err(WireError::Truncated);
    }
    let b = buf[*pos];
    *pos += 1;
    Ok(b)
}

/// Seals a frame body: `u64 nonce ++ body ++ u64 fnv1a64(nonce ++ body)`
/// — the `ccpi-site` wire-v2 idiom.
fn seal(nonce: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    wirefmt::encode_u64(nonce, &mut out);
    out.extend_from_slice(body);
    let sum = wirefmt::fnv1a64(&out);
    wirefmt::encode_u64(sum, &mut out);
    out
}

/// Splits a sealed frame back into `(nonce, body)`, verifying the
/// checksum.
fn unseal(buf: &[u8]) -> Result<(u64, &[u8]), WireError> {
    if buf.len() < 16 {
        return Err(WireError::Truncated);
    }
    let (payload, trailer) = buf.split_at(buf.len() - 8);
    let expected = wirefmt::decode_u64(trailer, &mut 0)?;
    let actual = wirefmt::fnv1a64(payload);
    if expected != actual {
        return Err(WireError::Checksum { expected, actual });
    }
    let nonce = wirefmt::decode_u64(payload, &mut 0)?;
    Ok((nonce, &payload[8..]))
}

/// How replay reached the end of the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a complete, valid frame.
    Clean,
    /// Replay stopped before end-of-file at a truncated, corrupt, or
    /// out-of-sequence frame; `dropped_bytes` were not replayed.
    Torn {
        /// Bytes from the end of the crash-consistent prefix to EOF.
        dropped_bytes: u64,
    },
}

/// The crash-consistent prefix of a WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Records of the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Frame count of the valid prefix (the next frame's nonce).
    pub frames: u64,
    /// Byte length of the valid prefix, including the header; 0 when the
    /// header itself is missing or torn.
    pub valid_len: u64,
    /// Whether anything past the prefix was dropped.
    pub tail: WalTail,
}

/// Reads a WAL file and returns its crash-consistent prefix: the longest
/// run of complete frames with valid checksums and consecutive nonces.
/// A missing file replays as an empty, torn log.
pub fn replay_wal(path: &Path) -> Result<WalReplay, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut replay = WalReplay {
        records: Vec::new(),
        frames: 0,
        valid_len: 0,
        tail: WalTail::Clean,
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        replay.tail = WalTail::Torn {
            dropped_bytes: bytes.len() as u64,
        };
        return Ok(replay);
    }
    let mut pos = WAL_MAGIC.len();
    replay.valid_len = pos as u64;
    loop {
        if pos == bytes.len() {
            return Ok(replay); // Clean end.
        }
        let frame_start = pos;
        let torn = |start: usize| WalTail::Torn {
            dropped_bytes: (bytes.len() - start) as u64,
        };
        let mut cur = pos;
        let Ok(len) = wirefmt::decode_u32(&bytes, &mut cur) else {
            replay.tail = torn(frame_start);
            return Ok(replay);
        };
        if len as u64 > MAX_FRAME || cur + len as usize > bytes.len() {
            replay.tail = torn(frame_start);
            return Ok(replay);
        }
        let sealed = &bytes[cur..cur + len as usize];
        let parsed = unseal(sealed).and_then(|(nonce, body)| {
            if nonce != replay.frames {
                // A duplicated or spliced frame: valid bytes, wrong
                // position. It was never written by this log's writer at
                // this offset, so the prefix ends here.
                return Err(WireError::BadTag(0));
            }
            WalRecord::decode(body)
        });
        match parsed {
            Ok(rec) => {
                replay.records.push(rec);
                replay.frames += 1;
                pos = cur + len as usize;
                replay.valid_len = pos as u64;
            }
            Err(_) => {
                replay.tail = torn(frame_start);
                return Ok(replay);
            }
        }
    }
}

/// Appends sealed records to a WAL file. All writes go through a
/// [`DiskGuard`]; an update is durable only once [`WalWriter::sync`]
/// returns.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Nonce of the next frame (= frames written so far).
    next_nonce: u64,
    /// Logical file length after every successful append.
    len: u64,
    /// Length known durable (covered by the last fsync).
    synced_len: u64,
    /// Set when a failed append or sync may have left the on-disk tail in
    /// an unknown state that could not be rolled back. A poisoned writer
    /// refuses every further append/sync ([`WalError::Poisoned`]) so an
    /// acknowledged record can never land past a torn frame, where replay
    /// would silently drop it.
    poisoned: bool,
}

impl WalWriter {
    /// Creates (or truncates) a WAL file: header written and fsync'd.
    pub fn create(path: &Path, guard: &mut DiskGuard) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            next_nonce: 0,
            len: 0,
            synced_len: 0,
            poisoned: false,
        };
        w.write_guarded(WAL_MAGIC, guard)?;
        w.len = WAL_MAGIC.len() as u64;
        w.sync(guard)?;
        Ok(w)
    }

    /// Re-opens a WAL at the crash-consistent prefix `replay` found:
    /// truncates any torn tail (making the truncation durable) and
    /// positions for appends. A log whose header never made it to disk is
    /// recreated from scratch.
    pub fn resume(
        path: &Path,
        replay: &WalReplay,
        guard: &mut DiskGuard,
    ) -> Result<Self, WalError> {
        if replay.valid_len < WAL_MAGIC.len() as u64 {
            return Self::create(path, guard);
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            next_nonce: replay.frames,
            len: replay.valid_len,
            synced_len: replay.valid_len,
            poisoned: false,
        };
        w.file.seek(SeekFrom::End(0))?;
        w.file.sync_data()?;
        Ok(w)
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Not durable until [`WalWriter::sync`].
    pub fn append(&mut self, rec: &WalRecord, guard: &mut DiskGuard) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let sealed = seal(self.next_nonce, &rec.encode());
        let mut frame = Vec::with_capacity(4 + sealed.len());
        wirefmt::encode_u32(sealed.len() as u32, &mut frame);
        frame.extend_from_slice(&sealed);
        self.write_guarded(&frame, guard)?;
        self.len += frame.len() as u64;
        self.next_nonce += 1;
        Ok(())
    }

    /// Forces everything appended so far to disk. Only after this returns
    /// may the corresponding updates be acknowledged.
    pub fn sync(&mut self, guard: &mut DiskGuard) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if guard.grant(1) == 0 {
            // Crash between write and fsync: the appended bytes may or
            // may not have reached the platter. The simulated process is
            // dead — this writer must never accept another byte.
            self.poisoned = true;
            self.crash_cleanup(guard);
            return Err(WalError::CrashInjected);
        }
        if let Err(e) = self.file.sync_data() {
            // Whether the appended bytes are durable is now unknowable;
            // nothing may ever be acknowledged through this writer again.
            self.poisoned = true;
            return Err(WalError::Io(e));
        }
        self.synced_len = self.len;
        Ok(())
    }

    /// Writes `bytes`, honouring the guard: a crash mid-grant leaves the
    /// allowed prefix on disk (a torn write) and aborts.
    fn write_guarded(&mut self, bytes: &[u8], guard: &mut DiskGuard) -> Result<(), WalError> {
        let allowed = guard.grant(bytes.len() as u64) as usize;
        if let Err(e) = self.file.write_all(&bytes[..allowed]) {
            // A real I/O failure: an unknown prefix of the frame may be on
            // disk. Cut the file back to the last good length so a later
            // append cannot land past a torn frame; if even that fails,
            // poison the writer.
            self.poisoned = self.truncate_to_len().is_err();
            return Err(WalError::Io(e));
        }
        if allowed < bytes.len() {
            self.poisoned = true;
            self.crash_cleanup(guard);
            return Err(WalError::CrashInjected);
        }
        Ok(())
    }

    /// Truncates the file back to the last successfully-appended length,
    /// dropping a torn frame, and repositions for appends.
    fn truncate_to_len(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        Ok(())
    }

    /// Models what the injected crash leaves behind: with
    /// `drop_unsynced`, everything past the last fsync barrier vanishes.
    fn crash_cleanup(&mut self, guard: &DiskGuard) {
        if guard.drops_unsynced() {
            let _ = self.file.set_len(self.synced_len);
        }
    }
}

/// Counters a [`GroupCommitWal`] keeps, for amortization assertions and
/// the E13 tables: `syncs / appends` is the group-commit win.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Records appended (each acked caller contributed at least one).
    pub appends: u64,
    /// Physical fsyncs issued. With concurrent callers this is strictly
    /// less than `appends`: one shared fsync acks a whole in-flight group.
    pub syncs: u64,
}

struct GroupState {
    wal: WalWriter,
    guard: DiskGuard,
    /// A leader is currently fsyncing outside the lock.
    leader_active: bool,
    stats: GroupCommitStats,
}

/// A thread-safe group-commit front-end over a [`WalWriter`].
///
/// Concurrent callers funnel through [`GroupCommitWal::append_and_sync`]:
/// each appends its sealed frame under the lock, then either *leads* —
/// issuing one `fsync` that covers every frame appended so far — or
/// *follows*, parking until a leader's shared sync covers its frame.
/// In-flight appends from N callers thus collapse into one physical
/// fsync, amortizing the per-update sync that dominates the durable
/// pipeline's cost, while preserving the ack invariant exactly: a caller
/// returns `Ok` only once its own frame is fsync'd.
///
/// The leader fsyncs on a cloned file handle **outside** the lock, so
/// followers keep appending during the disk wait and the next leader's
/// sync covers them all — the classic group-commit pipeline. Correctness
/// of the handoff: the leader captures the logical length under the lock
/// *before* releasing it, and every byte below that length was fully
/// written (under the lock) before the fsync began, so crediting
/// durability up to the captured length is sound.
///
/// Failure semantics are inherited from [`WalWriter`]: a failed append
/// or sync poisons the writer, every caller in the affected group gets
/// the error (or [`WalError::Poisoned`]), and no later append can land
/// past a torn frame. Crash injection through the shared [`DiskGuard`]
/// stays deterministic — grants happen under the lock, in arrival order.
pub struct GroupCommitWal {
    state: Mutex<GroupState>,
    /// Signals followers when a shared sync lands (or fails).
    synced: Condvar,
}

impl GroupCommitWal {
    /// Wraps a writer (and the guard metering it) for shared use.
    pub fn new(wal: WalWriter, guard: DiskGuard) -> Self {
        GroupCommitWal {
            state: Mutex::new(GroupState {
                wal,
                guard,
                leader_active: false,
                stats: GroupCommitStats::default(),
            }),
            synced: Condvar::new(),
        }
    }

    /// Appends `rec` and returns once a (possibly shared) fsync covers
    /// it — the record is durable when this returns `Ok`. See the type
    /// docs for the leader/follower protocol and failure semantics.
    pub fn append_and_sync(&self, rec: &WalRecord) -> Result<(), WalError> {
        let mut st = self.state.lock().expect("group wal lock");
        {
            let s = &mut *st;
            s.wal.append(rec, &mut s.guard)?;
            s.stats.appends += 1;
        }
        let target = st.wal.len;
        loop {
            if st.wal.synced_len >= target {
                return Ok(());
            }
            if st.wal.poisoned {
                return Err(WalError::Poisoned);
            }
            if st.leader_active {
                // A leader's fsync is in flight; it may not cover our
                // frame (we may have appended after it captured its
                // length), so re-check on wake rather than assume.
                st = self.synced.wait(st).expect("group wal lock");
                continue;
            }
            // Become the leader for everything appended so far.
            st.leader_active = true;
            let end = st.wal.len;
            if st.guard.grant(1) == 0 {
                // Injected crash at the shared sync: the whole in-flight
                // group dies unacknowledged, exactly like a single-caller
                // sync crash.
                st.wal.poisoned = true;
                let s = &mut *st;
                s.wal.crash_cleanup(&s.guard);
                st.leader_active = false;
                self.synced.notify_all();
                return Err(WalError::CrashInjected);
            }
            let file = match st.wal.file.try_clone() {
                Ok(f) => f,
                Err(e) => {
                    st.wal.poisoned = true;
                    st.leader_active = false;
                    self.synced.notify_all();
                    return Err(WalError::Io(e));
                }
            };
            drop(st);
            let res = file.sync_data();
            st = self.state.lock().expect("group wal lock");
            st.leader_active = false;
            match res {
                Ok(()) => {
                    st.wal.synced_len = st.wal.synced_len.max(end);
                    st.stats.syncs += 1;
                    self.synced.notify_all();
                    // Our own frame is ≤ `end` by construction, but loop
                    // anyway: the invariant lives in one place.
                }
                Err(e) => {
                    // Whether the group's bytes are durable is unknowable.
                    st.wal.poisoned = true;
                    self.synced.notify_all();
                    return Err(WalError::Io(e));
                }
            }
        }
    }

    /// Counters so far (appends and physical syncs).
    pub fn stats(&self) -> GroupCommitStats {
        self.state.lock().expect("group wal lock").stats
    }

    /// Has an earlier failure poisoned the underlying writer?
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().expect("group wal lock").wal.poisoned
    }

    /// Tears the front-end down, returning the writer and guard (e.g. to
    /// run recovery through [`replay_wal`] + [`WalWriter::resume`]).
    pub fn into_inner(self) -> (WalWriter, DiskGuard) {
        let st = self.state.into_inner().expect("group wal lock");
        (st.wal, st.guard)
    }
}

/// One registered constraint as persisted in a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintRecord {
    /// Registration name.
    pub name: String,
    /// Canonical source text (re-parsed at recovery).
    pub source: String,
    /// Fingerprint of the delta-plan set compiled from the source, so
    /// recovery can tell whether recompilation produced the same plans.
    pub plan_sig: u64,
}

/// One stage-4 verdict persisted in a checkpoint: restored after
/// recovery only if its relations are bytewise the checkpoint's (fresh
/// `TupleSnapshot` pins are taken at restore time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointVerdict {
    /// Constraint name.
    pub constraint: String,
    /// The update identity the verdict is keyed on.
    pub update: Update,
    /// The memoized verdict.
    pub violated: bool,
    /// Remote tuples accounting captured with the verdict.
    pub tuples: u64,
    /// Remote bytes accounting captured with the verdict.
    pub bytes: u64,
}

/// A full durable snapshot of manager state.
#[derive(Debug)]
pub struct Checkpoint {
    /// [`Database::version`] at checkpoint time.
    pub version: u64,
    /// Sequence number of the last applied update folded into `db`
    /// (0 = none); replay skips `Apply` records at or below it.
    pub last_seq: u64,
    /// Opaque solver-domain tag owned by the manager layer.
    pub solver_domain: u8,
    /// The full database.
    pub db: Database,
    /// Registered constraints, in registration order.
    pub constraints: Vec<ConstraintRecord>,
    /// Exportable stage-4 verdicts.
    pub verdicts: Vec<CheckpointVerdict>,
}

impl Checkpoint {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wirefmt::encode_u64(self.version, &mut out);
        wirefmt::encode_u64(self.last_seq, &mut out);
        out.push(self.solver_domain);
        let decls: Vec<_> = self.db.decls().collect();
        wirefmt::encode_u32(decls.len() as u32, &mut out);
        for d in decls {
            wirefmt::encode_str(d.name.as_str(), &mut out);
            wirefmt::encode_u32(d.arity as u32, &mut out);
            encode_locality(d.locality, &mut out);
            let rel = self.db.relation(d.name.as_str()).expect("declared");
            let rows: Vec<&crate::tuple::Tuple> = rel.iter().collect();
            wirefmt::encode_rows(rows.into_iter(), &mut out);
        }
        wirefmt::encode_u32(self.constraints.len() as u32, &mut out);
        for c in &self.constraints {
            wirefmt::encode_str(&c.name, &mut out);
            wirefmt::encode_str(&c.source, &mut out);
            wirefmt::encode_u64(c.plan_sig, &mut out);
        }
        wirefmt::encode_u32(self.verdicts.len() as u32, &mut out);
        for v in &self.verdicts {
            wirefmt::encode_str(&v.constraint, &mut out);
            encode_update(&v.update, &mut out);
            out.push(v.violated as u8);
            wirefmt::encode_u64(v.tuples, &mut out);
            wirefmt::encode_u64(v.bytes, &mut out);
        }
        out
    }

    fn decode_body(buf: &[u8]) -> Result<Checkpoint, WireError> {
        let mut pos = 0;
        let version = wirefmt::decode_u64(buf, &mut pos)?;
        let last_seq = wirefmt::decode_u64(buf, &mut pos)?;
        let solver_domain = take_u8(buf, &mut pos)?;
        let mut db = Database::new();
        let n_decls = wirefmt::decode_u32(buf, &mut pos)?;
        for _ in 0..n_decls {
            let name = wirefmt::decode_str(buf, &mut pos)?;
            let arity = wirefmt::decode_u32(buf, &mut pos)? as usize;
            let locality = decode_locality(buf, &mut pos)?;
            db.declare(&name, arity, locality)
                .map_err(|_| WireError::BadTag(1))?;
            for t in wirefmt::decode_rows(buf, &mut pos)? {
                db.insert(&name, t).map_err(|_| WireError::BadTag(1))?;
            }
        }
        db.force_version(version);
        let mut constraints = Vec::new();
        let n_constraints = wirefmt::decode_u32(buf, &mut pos)?;
        for _ in 0..n_constraints {
            constraints.push(ConstraintRecord {
                name: wirefmt::decode_str(buf, &mut pos)?,
                source: wirefmt::decode_str(buf, &mut pos)?,
                plan_sig: wirefmt::decode_u64(buf, &mut pos)?,
            });
        }
        let mut verdicts = Vec::new();
        let n_verdicts = wirefmt::decode_u32(buf, &mut pos)?;
        for _ in 0..n_verdicts {
            verdicts.push(CheckpointVerdict {
                constraint: wirefmt::decode_str(buf, &mut pos)?,
                update: decode_update(buf, &mut pos)?,
                violated: take_u8(buf, &mut pos)? != 0,
                tuples: wirefmt::decode_u64(buf, &mut pos)?,
                bytes: wirefmt::decode_u64(buf, &mut pos)?,
            });
        }
        if pos != buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(Checkpoint {
            version,
            last_seq,
            solver_domain,
            db,
            constraints,
            verdicts,
        })
    }
}

/// Writes a checkpoint atomically: staged to `checkpoint.bin.tmp`,
/// fsync'd, then renamed over `checkpoint.bin`. The fsync and the rename
/// each charge the guard, so the injected-crash schedule covers "tmp
/// fully written but never renamed" — recovery must ignore it.
pub fn write_checkpoint(
    dir: &Path,
    ckpt: &Checkpoint,
    guard: &mut DiskGuard,
) -> Result<(), WalError> {
    let sealed = seal(ckpt.version, &ckpt.encode_body());
    let mut bytes = Vec::with_capacity(CKPT_MAGIC.len() + 4 + sealed.len());
    bytes.extend_from_slice(CKPT_MAGIC);
    wirefmt::encode_u32(sealed.len() as u32, &mut bytes);
    bytes.extend_from_slice(&sealed);

    let tmp = dir.join(CHECKPOINT_TMP);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    let allowed = guard.grant(bytes.len() as u64) as usize;
    file.write_all(&bytes[..allowed])?;
    if allowed < bytes.len() {
        if guard.drops_unsynced() {
            // The staged bytes never reached the platter; what survives
            // is an empty (or vanished) tmp file.
            let _ = file.set_len(0);
        }
        return Err(WalError::CrashInjected);
    }
    if guard.grant(1) == 0 {
        if guard.drops_unsynced() {
            let _ = file.set_len(0);
        }
        return Err(WalError::CrashInjected);
    }
    file.sync_data()?;
    if guard.grant(1) == 0 {
        // Crash between staging and rename: a complete, valid tmp file
        // is left behind. Recovery must ignore and remove it.
        return Err(WalError::CrashInjected);
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    // Make the rename itself durable (best-effort; not all platforms
    // support fsync on directories).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the checkpoint in `dir`, first removing any staged
/// `checkpoint.bin.tmp` a crash left behind (complete or torn — either
/// way it was never committed). Returns the checkpoint (`None` when
/// there has never been one) and whether a leftover tmp was cleaned.
pub fn read_checkpoint(dir: &Path) -> Result<(Option<Checkpoint>, bool), WalError> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let tmp_cleaned = match std::fs::remove_file(&tmp) {
        Ok(()) => true,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => return Err(WalError::Io(e)),
    };
    let path = dir.join(CHECKPOINT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, tmp_cleaned)),
        Err(e) => return Err(WalError::Io(e)),
    }
    if bytes.len() < CKPT_MAGIC.len() || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(WalError::BadMagic);
    }
    let mut pos = CKPT_MAGIC.len();
    let len = wirefmt::decode_u32(&bytes, &mut pos)? as usize;
    if len as u64 > MAX_FRAME || pos + len > bytes.len() {
        return Err(WalError::Wire(WireError::Truncated));
    }
    let (nonce, body) = unseal(&bytes[pos..pos + len])?;
    let ckpt = Checkpoint::decode_body(body)?;
    if nonce != ckpt.version {
        return Err(WalError::Wire(WireError::Checksum {
            expected: ckpt.version,
            actual: nonce,
        }));
    }
    Ok((Some(ckpt), tmp_cleaned))
}

/// A unique scratch directory under the system temp dir, created on
/// call. Shared by the durability tests and the crash-soak harness so
/// concurrent runs never collide.
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ccpi-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Declare {
                name: "emp".into(),
                arity: 3,
                locality: Locality::Local,
            },
            WalRecord::AddConstraint {
                name: "floor".into(),
                source: "panic :- emp(N,D,S) & S < 10.".into(),
            },
            WalRecord::Apply {
                seq: 1,
                update: Update::insert("emp", tuple!["jones", "shoe", 50]),
            },
            WalRecord::Apply {
                seq: 2,
                update: Update::delete("emp", tuple!["jones", "shoe", 50]),
            },
        ]
    }

    fn write_log(dir: &Path) -> (PathBuf, Vec<WalRecord>) {
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let mut w = WalWriter::create(&path, &mut guard).unwrap();
        let recs = sample_records();
        for r in &recs {
            w.append(r, &mut guard).unwrap();
        }
        w.sync(&mut guard).unwrap();
        (path, recs)
    }

    #[test]
    fn wal_round_trips_all_record_kinds() {
        let dir = scratch_dir("wal-rt");
        let (path, recs) = write_log(&dir);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs);
        assert_eq!(replay.frames, recs.len() as u64);
        assert_eq!(replay.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_record_ends_replay_at_last_complete_record() {
        let dir = scratch_dir("wal-trunc");
        let (path, recs) = write_log(&dir);
        let full = std::fs::read(&path).unwrap();
        let clean = replay_wal(&path).unwrap();
        // Cut anywhere strictly inside the last frame: replay must drop
        // exactly that frame and keep the prefix.
        let last_start = {
            // Re-derive the last frame's start by replaying the first
            // n-1 records' prefix length.
            let mut w = DiskGuard::new();
            let tmp = dir.join("prefix.bin");
            let mut writer = WalWriter::create(&tmp, &mut w).unwrap();
            for r in &recs[..recs.len() - 1] {
                writer.append(r, &mut w).unwrap();
            }
            writer.sync(&mut w).unwrap();
            std::fs::metadata(&tmp).unwrap().len() as usize
        };
        for cut in [last_start + 1, last_start + 5, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = replay_wal(&path).unwrap();
            assert_eq!(replay.records, recs[..recs.len() - 1]);
            assert_eq!(
                replay.tail,
                WalTail::Torn {
                    dropped_bytes: (cut - last_start) as u64
                }
            );
            assert_eq!(replay.valid_len, last_start as u64);
        }
        assert_eq!(clean.valid_len, full.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_checksum_ends_replay_before_the_record() {
        let dir = scratch_dir("wal-flip");
        let (path, recs) = write_log(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the last frame's payload.
        let n = bytes.len();
        bytes[n - 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs[..recs.len() - 1]);
        assert!(matches!(replay.tail, WalTail::Torn { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicated_record_is_rejected_by_its_nonce() {
        let dir = scratch_dir("wal-dup");
        let (path, recs) = write_log(&dir);
        // Duplicate the final frame verbatim: checksum valid, position
        // wrong.
        let full = std::fs::read(&path).unwrap();
        let mut prefix_guard = DiskGuard::new();
        let tmp = dir.join("prefix.bin");
        let mut writer = WalWriter::create(&tmp, &mut prefix_guard).unwrap();
        for r in &recs[..recs.len() - 1] {
            writer.append(r, &mut prefix_guard).unwrap();
        }
        writer.sync(&mut prefix_guard).unwrap();
        let last_start = std::fs::metadata(&tmp).unwrap().len() as usize;
        let mut bytes = full.clone();
        bytes.extend_from_slice(&full[last_start..]);
        std::fs::write(&path, &bytes).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs, "original records all survive");
        assert!(
            matches!(replay.tail, WalTail::Torn { .. }),
            "the duplicate is dropped, not replayed twice"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_and_appends() {
        let dir = scratch_dir("wal-resume");
        let (path, recs) = write_log(&dir);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records.len(), recs.len() - 1);
        let mut guard = DiskGuard::new();
        let mut w = WalWriter::resume(&path, &replay, &mut guard).unwrap();
        let extra = WalRecord::Apply {
            seq: 9,
            update: Update::insert("emp", tuple!["smith", "toy", 70]),
        };
        w.append(&extra, &mut guard).unwrap();
        w.sync(&mut guard).unwrap();
        let replay2 = replay_wal(&path).unwrap();
        let mut expect = recs[..recs.len() - 1].to_vec();
        expect.push(extra);
        assert_eq!(replay2.records, expect);
        assert_eq!(replay2.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_mid_append_leaves_a_torn_write() {
        let dir = scratch_dir("wal-crash");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let mut w = WalWriter::create(&path, &mut guard).unwrap();
        let recs = sample_records();
        w.append(&recs[0], &mut guard).unwrap();
        w.sync(&mut guard).unwrap();
        let synced = std::fs::metadata(&path).unwrap().len();
        // Arm a budget that dies 5 bytes into the next frame.
        let mut armed = DiskGuard::with_budget(5, false);
        assert!(matches!(
            w.append(&recs[2], &mut armed),
            Err(WalError::CrashInjected)
        ));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), synced + 5);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs[..1]);
        assert_eq!(replay.tail, WalTail::Torn { dropped_bytes: 5 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_is_poisoned_after_a_failed_append() {
        let dir = scratch_dir("wal-poison");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let mut w = WalWriter::create(&path, &mut guard).unwrap();
        let recs = sample_records();
        w.append(&recs[0], &mut guard).unwrap();
        w.sync(&mut guard).unwrap();
        // A failed append leaves a torn frame; the writer must refuse to
        // put further (acknowledgeable) records past it.
        let mut armed = DiskGuard::with_budget(5, false);
        assert!(matches!(
            w.append(&recs[1], &mut armed),
            Err(WalError::CrashInjected)
        ));
        assert!(matches!(
            w.append(&recs[2], &mut guard),
            Err(WalError::Poisoned)
        ));
        assert!(matches!(w.sync(&mut guard), Err(WalError::Poisoned)));
        // Recovery path: replay drops the torn frame, resume truncates it
        // and reopens a usable writer.
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs[..1]);
        let mut w2 = WalWriter::resume(&path, &replay, &mut guard).unwrap();
        w2.append(&recs[2], &mut guard).unwrap();
        w2.sync(&mut guard).unwrap();
        let replay2 = replay_wal(&path).unwrap();
        assert_eq!(replay2.records, vec![recs[0].clone(), recs[2].clone()]);
        assert_eq!(replay2.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_can_drop_unsynced_bytes() {
        let dir = scratch_dir("wal-dropun");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let mut w = WalWriter::create(&path, &mut guard).unwrap();
        let recs = sample_records();
        w.append(&recs[0], &mut guard).unwrap();
        w.sync(&mut guard).unwrap();
        let synced = std::fs::metadata(&path).unwrap().len();
        // Write a full record, then crash at the fsync with the page
        // cache lost: the record vanishes entirely.
        let mut armed = DiskGuard::with_budget(1000, true);
        w.append(&recs[2], &mut armed).unwrap();
        armed.budget = Some(0);
        assert!(matches!(w.sync(&mut armed), Err(WalError::CrashInjected)));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), synced);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, recs[..1]);
        assert_eq!(replay.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Remote).unwrap();
        db.insert("emp", tuple!["jones", "shoe", 50]).unwrap();
        db.insert("dept", tuple!["shoe"]).unwrap();
        let version = db.version();
        Checkpoint {
            version,
            last_seq: 42,
            solver_domain: 1,
            db,
            constraints: vec![ConstraintRecord {
                name: "floor".into(),
                source: "panic :- emp(N,D,S) & S < 10.".into(),
                plan_sig: 0xdead_beef,
            }],
            verdicts: vec![CheckpointVerdict {
                constraint: "floor".into(),
                update: Update::insert("emp", tuple!["smith", "toy", 70]),
                violated: false,
                tuples: 3,
                bytes: 17,
            }],
        }
    }

    #[test]
    fn checkpoint_round_trips_and_restores_the_version() {
        let dir = scratch_dir("ckpt-rt");
        let ckpt = sample_checkpoint();
        let mut guard = DiskGuard::new();
        write_checkpoint(&dir, &ckpt, &mut guard).unwrap();
        let (loaded, cleaned) = read_checkpoint(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert!(!cleaned);
        assert_eq!(loaded.version, ckpt.version);
        assert_eq!(loaded.db.version(), ckpt.version);
        assert_eq!(loaded.last_seq, 42);
        assert_eq!(loaded.solver_domain, 1);
        assert_eq!(loaded.constraints, ckpt.constraints);
        assert_eq!(loaded.verdicts, ckpt.verdicts);
        assert_eq!(
            loaded.db.relation("emp").unwrap(),
            ckpt.db.relation("emp").unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_checkpoint_tmp_is_ignored_and_cleaned() {
        let dir = scratch_dir("ckpt-tmp");
        let ckpt = sample_checkpoint();
        let mut guard = DiskGuard::new();
        write_checkpoint(&dir, &ckpt, &mut guard).unwrap();
        // A later checkpoint crashed right before its rename, leaving a
        // complete tmp behind — it was never committed and must lose to
        // the renamed file.
        let mut newer = sample_checkpoint();
        newer.last_seq = 99;
        newer.db.insert("dept", tuple!["toy"]).unwrap();
        newer.version = newer.db.version();
        // Size the write in a throwaway dir, then arm a budget that
        // exhausts exactly at the rename charge: full write and fsync
        // succeed, the rename never happens.
        let mut sized = DiskGuard::new();
        let probe_dir = scratch_dir("ckpt-tmp-probe");
        write_checkpoint(&probe_dir, &newer, &mut sized).unwrap();
        std::fs::remove_dir_all(&probe_dir).unwrap();
        let mut armed = DiskGuard::with_budget(sized.written - 1, false);
        assert!(matches!(
            write_checkpoint(&dir, &newer, &mut armed),
            Err(WalError::CrashInjected)
        ));
        assert!(dir.join(CHECKPOINT_TMP).exists(), "tmp left behind");
        let (loaded, cleaned) = read_checkpoint(&dir).unwrap();
        assert!(cleaned, "tmp removed at recovery");
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        assert_eq!(loaded.unwrap().last_seq, 42, "committed checkpoint wins");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_acks_every_concurrent_appender_durably() {
        use std::sync::Arc;
        let dir = scratch_dir("gcw-concurrent");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let w = WalWriter::create(&path, &mut guard).unwrap();
        let group = Arc::new(GroupCommitWal::new(w, guard));
        let threads = 8;
        let per_thread = 25;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let g = Arc::clone(&group);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let rec = WalRecord::Apply {
                            seq: (t * per_thread + i) as u64,
                            update: Update::insert("emp", tuple![t as i64, i as i64]),
                        };
                        g.append_and_sync(&rec).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.appends, (threads * per_thread) as u64);
        assert!(stats.syncs >= 1 && stats.syncs <= stats.appends);
        // Every acked record is on disk, in a clean log with consecutive
        // nonces (replay validates the nonces itself).
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.records.len(), threads * per_thread);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_shares_one_fsync_across_a_parked_group() {
        use std::sync::Arc;
        let dir = scratch_dir("gcw-amortize");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let w = WalWriter::create(&path, &mut guard).unwrap();
        let group = Arc::new(GroupCommitWal::new(w, guard));
        // Build a real in-flight group: many appenders started together
        // behind a barrier. The first leader's fsync covers whatever
        // landed before it captured the length; stragglers share later
        // syncs. With 16 racing appenders the physical sync count must
        // come in under one-per-record on any schedule where at least two
        // overlap; assert the invariant that can never break — syncs ≤
        // appends — plus full durability of every ack.
        let n = 16;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let g = Arc::clone(&group);
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let rec = WalRecord::Apply {
                        seq: t as u64,
                        update: Update::insert("emp", tuple![t as i64]),
                    };
                    g.append_and_sync(&rec).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.appends, n as u64);
        assert!(stats.syncs <= stats.appends);
        assert_eq!(
            replay_wal(&path).unwrap().records.len(),
            n,
            "every acked append is durable"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_crash_poisons_the_whole_group() {
        use std::sync::Arc;
        let dir = scratch_dir("gcw-crash");
        let path = dir.join(WAL_FILE);
        let mut guard = DiskGuard::new();
        let w = WalWriter::create(&path, &mut guard).unwrap();
        // Enough budget for a couple of appends, then the pipeline dies
        // (mid-append or at the shared sync grant, depending on the
        // schedule). The invariant under every schedule: a caller acked
        // `Ok` has its record in the crash-consistent prefix, everyone
        // else gets an error, and the group ends poisoned.
        let armed = DiskGuard::with_budget(120, false);
        let group = Arc::new(GroupCommitWal::new(w, armed));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let g = Arc::clone(&group);
                std::thread::spawn(move || {
                    let rec = WalRecord::Apply {
                        seq: t as u64,
                        update: Update::insert("emp", tuple![t as i64, 0i64, 0i64]),
                    };
                    (t as u64, g.append_and_sync(&rec))
                })
            })
            .collect();
        let results: Vec<(u64, Result<(), WalError>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            results.iter().any(|(_, r)| r.is_err()),
            "the armed budget must fire"
        );
        assert!(group.is_poisoned());
        let durable: Vec<u64> = replay_wal(&path)
            .unwrap()
            .records
            .iter()
            .map(|r| match r {
                WalRecord::Apply { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        for (seq, result) in &results {
            if result.is_ok() {
                assert!(
                    durable.contains(seq),
                    "acked record {seq} missing from the crash-consistent prefix"
                );
            }
        }
        // Further traffic is refused until recovery.
        let late = WalRecord::Apply {
            seq: 99,
            update: Update::insert("emp", tuple![9i64]),
        };
        assert!(matches!(
            group.append_and_sync(&late),
            Err(WalError::Poisoned)
        ));
        // Recovery path: replay drops any torn tail, resume reopens.
        let (_w, _g) = Arc::try_unwrap(group)
            .ok()
            .map(|g| g.into_inner())
            .expect("sole owner");
        let replay = replay_wal(&path).unwrap();
        let mut fresh = DiskGuard::new();
        let mut w2 = WalWriter::resume(&path, &replay, &mut fresh).unwrap();
        w2.append(&late, &mut fresh).unwrap();
        w2.sync(&mut fresh).unwrap();
        assert_eq!(replay_wal(&path).unwrap().tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_prefix() {
        let dir = scratch_dir("ckpt-corrupt");
        let ckpt = sample_checkpoint();
        let mut guard = DiskGuard::new();
        write_checkpoint(&dir, &ckpt, &mut guard).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
