//! Seeded delta plans: stage-4 checking whose cost tracks `|Δ|`, not `|DB|`.
//!
//! A snapshot full check evaluates a constraint's whole program over a
//! copy-on-write post-update database. For the common case — an *insertion*
//! into a relation the constraint's body uses only *positively* — that is
//! wildly wasteful: a new violation, if any, must use the new tuple in at
//! least one body occurrence (under the paper's §2 standing assumption that
//! all constraints hold before the update, the old database derives no
//! `panic`). So instead of re-joining everything, a [`DeltaPlanSet`]
//! compiles, per rule and per body occurrence of each relation `R`, a
//! variant of the rule's [`JoinPlan`] whose first level is pre-bound to a
//! Δ-tuple of `R` ([`JoinPlan::compile_seeded`]); checking an update then
//! means seeding those plans with the Δ-tuples and joining outward. A rule
//! with k occurrences of `R` contributes k delta plans whose results are
//! unioned — any post-update derivation that uses a Δ-tuple maps *some*
//! occurrence to it, and the remaining occurrences read the post-update
//! state through an [`Overlay`].
//!
//! **Eligibility** is decided statically by a polarity (monotonicity)
//! analysis over the stratified program: `panic`'s derivability is monotone
//! in relation `R` iff every path from an occurrence of `R` to `panic`
//! crosses an even number of negations. Inserts into monotone relations
//! can use the seeded path; deletions, occurrences under negation, and
//! mixed-polarity relations fall back to the snapshot full check. The
//! seeded *evaluation* is additionally restricted to flat programs (every
//! body literal over an EDB relation) — the shape of every constraint the
//! paper's examples use; deeper programs would need Δ-propagation through
//! IDB relations and simply keep the snapshot path.

use crate::join::Store;
use crate::plan::{JoinPlan, Overlay};
use ccpi_ir::{Program, Sym, PANIC};
use ccpi_storage::{Database, DeltaSet, Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// How a relation's tuples can affect `panic`: the sign of the occurrences
/// on derivation paths from the relation to the goal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// Every occurrence reaches `panic` through an even number of
    /// negations: more tuples can only derive more `panic` facts.
    Positive,
    /// Every occurrence crosses an odd number of negations: more tuples
    /// can only *retract* `panic` derivations.
    Negative,
    /// Occurrences of both signs — no monotonicity either way.
    Mixed,
}

impl Polarity {
    fn join(self, other: Polarity) -> Polarity {
        if self == other {
            self
        } else {
            Polarity::Mixed
        }
    }

    fn flip(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            Polarity::Mixed => Polarity::Mixed,
        }
    }
}

/// The verdict of a seeded delta check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaVerdict {
    /// `true` iff some delta plan derived `panic` — i.e. the post-update
    /// database violates the constraint (given the standing assumption).
    pub violated: bool,
    /// Number of Δ-tuples instantiated into delta plans (a Δ-tuple seeding
    /// k plans counts k times).
    pub seeds_joined: usize,
    /// Total `panic` derivations found across all plans.
    pub derivations: usize,
}

/// Per-occurrence delta plans plus the static analysis that gates them,
/// compiled once per constraint at registration time.
#[derive(Clone, Debug)]
pub struct DeltaPlanSet {
    /// Polarity of each EDB relation w.r.t. `panic`, from the sign
    /// propagation described in the module docs.
    polarity: BTreeMap<Sym, Polarity>,
    /// `true` when every rule body reads only EDB relations — the shape
    /// the seeded evaluator supports.
    flat: bool,
    /// Seeded plans per EDB relation: one per (panic rule, occurrence).
    /// Only populated for flat programs.
    plans: BTreeMap<Sym, Vec<JoinPlan>>,
    /// Arity of each EDB relation the program reads.
    edb_sig: BTreeMap<Sym, usize>,
}

impl DeltaPlanSet {
    /// Compiles the delta plans and polarity analysis for a program.
    ///
    /// The program must already be validated (consistent signature, safe
    /// rules, stratifiable) — the manager builds its [`crate::Engine`]
    /// first, which checks all three.
    pub fn compile(program: &Program) -> DeltaPlanSet {
        let idb = program.idb_predicates();
        let edb = program.edb_predicates();
        let sig = program.signature().expect("validated by Engine::new");
        let edb_sig: BTreeMap<Sym, usize> =
            sig.into_iter().filter(|(p, _)| edb.contains(p)).collect();

        // Sign propagation to fixpoint: `pol[q][p]` is the polarity of EDB
        // relation `p` in derivations of IDB predicate `q`. Terminates
        // because the {Positive, Negative, Mixed} join-semilattice is
        // finite and `join` only moves up.
        let mut pol: BTreeMap<Sym, BTreeMap<Sym, Polarity>> = BTreeMap::new();
        let mut changed = true;
        while changed {
            changed = false;
            for rule in &program.rules {
                let mut contributions: Vec<(Sym, Polarity)> = Vec::new();
                for (atom, sign) in rule
                    .positive_subgoals()
                    .map(|a| (a, Polarity::Positive))
                    .chain(rule.negated_subgoals().map(|a| (a, Polarity::Negative)))
                {
                    if idb.contains(&atom.pred) {
                        if let Some(inner) = pol.get(&atom.pred) {
                            for (p, &s) in inner {
                                let s = if sign == Polarity::Negative {
                                    s.flip()
                                } else {
                                    s
                                };
                                contributions.push((p.clone(), s));
                            }
                        }
                    } else {
                        contributions.push((atom.pred.clone(), sign));
                    }
                }
                let head = pol.entry(rule.head.pred.clone()).or_default();
                for (p, s) in contributions {
                    let merged = match head.get(&p) {
                        Some(&old) => old.join(s),
                        None => s,
                    };
                    if head.insert(p, merged) != Some(merged) {
                        changed = true;
                    }
                }
            }
        }
        let polarity = pol.remove(PANIC).unwrap_or_default();

        let flat = program.rules.iter().all(|r| {
            r.positive_subgoals()
                .chain(r.negated_subgoals())
                .all(|a| !idb.contains(&a.pred))
        });

        let mut plans: BTreeMap<Sym, Vec<JoinPlan>> = BTreeMap::new();
        if flat {
            for rule in program.rules.iter().filter(|r| r.head.pred == PANIC) {
                for (occ, atom) in rule.positive_subgoals().enumerate() {
                    plans
                        .entry(atom.pred.clone())
                        .or_default()
                        .push(JoinPlan::compile_seeded(rule, occ));
                }
            }
        }

        DeltaPlanSet {
            polarity,
            flat,
            plans,
            edb_sig,
        }
    }

    /// The polarity of `pred` w.r.t. `panic`, or `None` when the program
    /// never reads it (its tuples cannot affect the verdict).
    pub fn polarity(&self, pred: &str) -> Option<Polarity> {
        self.polarity.get(pred).copied()
    }

    /// `true` when every rule body is EDB-only (see module docs).
    pub fn is_flat(&self) -> bool {
        self.flat
    }

    /// Number of seeded plans compiled for `pred` — one per (rule,
    /// occurrence) pair.
    pub fn plan_count(&self, pred: &str) -> usize {
        self.plans.get(pred).map(Vec::len).unwrap_or(0)
    }

    /// A fingerprint of the compiled plan set: the polarity table, the
    /// flatness flag, the EDB signature, and the full shape of every
    /// seeded plan. Two plan sets with equal signatures behave
    /// identically; a signature change after recompiling the same source
    /// means the compiler (or schema) changed underneath a checkpoint,
    /// and recovery reports it instead of trusting restored verdicts.
    pub fn signature(&self) -> u64 {
        // Every field is a BTreeMap or scalar, so the Debug rendering is
        // deterministic; hashing it captures plan internals without
        // coupling the checkpoint format to `JoinPlan`'s layout.
        let rendered = format!(
            "flat={:?} polarity={:?} edb={:?} plans={:?}",
            self.flat, self.polarity, self.edb_sig, self.plans
        );
        ccpi_storage::wirefmt::fnv1a64(rendered.as_bytes())
    }

    /// `true` when the delta path decides this Δ exactly (given the
    /// standing assumption). Every changed relation the program reads must
    /// be positive w.r.t. `panic`; then:
    ///
    /// * **insert-only** Δ — a new violation must use a Δ-tuple, so the
    ///   seeded plans decide it (requires a flat program for the plans to
    ///   exist);
    /// * **delete-only** Δ — shrinking positively-read relations can only
    ///   retract `panic` derivations, so the constraint trivially still
    ///   holds (no plans needed, any program shape);
    /// * **mixed** inserts and deletes across read relations fall back: a
    ///   seeded check over `pre ∪ Δ⁺` could report a violation whose
    ///   derivation uses a deleted tuple.
    ///
    /// Registration-time eligibility for a single-update *template*
    /// (insert/delete × predicate): whether every concrete update with
    /// that shape takes the delta path. Eligibility never depends on the
    /// Δ-tuple's constants — only on the polarity of the touched relation
    /// and the program's flatness — so the per-template answer is exact
    /// and lets the stage pipeline pick its ordering once per
    /// (constraint, template) instead of re-deriving it per update.
    pub fn template_eligible(&self, template: &ccpi_storage::UpdateTemplate) -> bool {
        if !self.edb_sig.contains_key(&template.pred) {
            return true; // unread relations cannot affect the verdict
        }
        if self.polarity.get(&template.pred) != Some(&Polarity::Positive) {
            return false;
        }
        !template.insert || self.flat
    }

    pub fn eligible(&self, delta: &DeltaSet) -> bool {
        let mut any_insert = false;
        let mut any_delete = false;
        for pred in delta.touched_preds() {
            if !self.edb_sig.contains_key(pred) {
                continue; // unread relations cannot affect the verdict
            }
            if self.polarity.get(pred) != Some(&Polarity::Positive) {
                return false;
            }
            any_insert |= !delta.inserted(pred.as_str()).is_empty();
            any_delete |= delta.deletes_from(pred.as_str());
        }
        if any_insert && any_delete {
            return false;
        }
        !any_insert || self.flat
    }

    /// Runs the seeded delta check: seeds every plan of every changed
    /// relation with the *fresh* Δ-tuples (inserts not already present in
    /// `db`) and reports whether any plan derives `panic`.
    ///
    /// Callers must have established [`DeltaPlanSet::eligible`]; the
    /// verdict then equals the snapshot full check's, by the standing
    /// assumption that `db` itself satisfies the constraint.
    pub fn check(&self, db: &Database, delta: &DeltaSet) -> DeltaVerdict {
        self.check_loaded(&self.load(db), delta)
    }

    /// Batch variant: loads the pre-update EDB once and checks each Δ
    /// independently against it. The Δs deliberately do *not* see each
    /// other — every verdict matches a standalone [`DeltaPlanSet::check`]
    /// of that Δ alone, so callers get per-update semantics while paying
    /// the relation loading once per batch.
    pub fn check_batch(&self, db: &Database, deltas: &[DeltaSet]) -> Vec<DeltaVerdict> {
        let store = self.load(db);
        deltas
            .iter()
            .map(|d| self.check_loaded(&store, d))
            .collect()
    }

    /// Loads the pre-update EDB by O(1) copy-on-write clones.
    fn load(&self, db: &Database) -> Store {
        let mut store = Store::default();
        for (pred, &arity) in &self.edb_sig {
            let rel = db
                .relation(pred.as_str())
                .cloned()
                .unwrap_or_else(|| Relation::new(arity));
            store.rels.insert(pred.clone(), rel);
        }
        store
    }

    fn check_loaded(&self, store: &Store, delta: &DeltaSet) -> DeltaVerdict {
        // Fresh seeds: inserted tuples the base does not already hold
        // (re-inserting a present tuple leaves the database unchanged).
        let fresh: BTreeMap<Sym, Vec<Tuple>> = delta
            .inserts()
            .filter(|(p, _)| self.edb_sig.contains_key(p.as_str()))
            .map(|(p, ts)| {
                let ts = ts
                    .iter()
                    .filter(|t| !store.contains(p, t))
                    .cloned()
                    .collect::<Vec<_>>();
                (p.clone(), ts)
            })
            .collect();
        let mut overlay = Overlay::default();
        for (p, ts) in &fresh {
            overlay.add(p.clone(), ts);
        }

        let mut verdict = DeltaVerdict::default();
        for (pred, seeds) in &fresh {
            if seeds.is_empty() {
                continue;
            }
            for plan in self.plans.get(pred).map(Vec::as_slice).unwrap_or(&[]) {
                verdict.seeds_joined += seeds.len();
                plan.eval_seeded(store, &overlay, seeds, &mut |_| {
                    verdict.derivations += 1;
                });
            }
        }
        verdict.violated = verdict.derivations > 0;
        verdict
    }
}

/// The set of EDB relations `program` reads only positively on every path
/// to `panic` — the relations whose inserts the delta path can decide.
pub fn positive_edb_preds(plans: &DeltaPlanSet) -> BTreeSet<Sym> {
    plans
        .polarity
        .iter()
        .filter(|(_, &s)| s == Polarity::Positive)
        .map(|(p, _)| p.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccpi_parser::parse_program;
    use ccpi_storage::{tuple, Locality, Update};

    fn emp_db() -> Database {
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        db.declare("dept", 1, Locality::Local).unwrap();
        db.insert("emp", tuple!["a", "toy", 10]).unwrap();
        db.insert("dept", tuple!["toy"]).unwrap();
        db
    }

    #[test]
    fn signature_is_stable_per_source_and_distinguishes_programs() {
        let src = "panic :- emp(E,D,S) & not dept(D).";
        let a = DeltaPlanSet::compile(&parse_program(src).unwrap());
        let b = DeltaPlanSet::compile(&parse_program(src).unwrap());
        assert_eq!(a.signature(), b.signature());
        let c = DeltaPlanSet::compile(&parse_program("panic :- emp(E,D,S) & S < 10.").unwrap());
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn template_eligibility_matches_concrete_single_updates() {
        use ccpi_storage::UpdateTemplate;
        let sources = [
            "panic :- emp(E,D,S) & not dept(D).",
            "panic :- emp(E,D,S) & S < 10.",
            "bad(E) :- emp(E,D,S) & not dept(D).\npanic :- emp(E,D,S) & bad(E).",
        ];
        for src in sources {
            let plans = DeltaPlanSet::compile(&parse_program(src).unwrap());
            for pred in ["emp", "dept", "salRange"] {
                let arity = if pred == "dept" {
                    tuple!["x"]
                } else {
                    tuple!["x", "y", 1]
                };
                for update in [
                    Update::insert(pred, arity.clone()),
                    Update::delete(pred, arity.clone()),
                ] {
                    assert_eq!(
                        plans.template_eligible(&UpdateTemplate::of(&update)),
                        plans.eligible(&DeltaSet::from_update(&update)),
                        "{src}: {update}"
                    );
                }
            }
        }
    }

    #[test]
    fn polarity_direct_occurrences() {
        let p = parse_program("panic :- emp(E,D,S) & not dept(D).").unwrap();
        let d = DeltaPlanSet::compile(&p);
        assert_eq!(d.polarity("emp"), Some(Polarity::Positive));
        assert_eq!(d.polarity("dept"), Some(Polarity::Negative));
        assert_eq!(d.polarity("salRange"), None);
        assert!(d.is_flat());
    }

    #[test]
    fn polarity_propagates_through_idb_with_sign_flips() {
        // bad is an IDB helper; dept reaches panic through one negation
        // (inside bad) and emp through zero in one rule, one in the other.
        let p = parse_program(
            "bad(E) :- emp(E,D,S) & not dept(D).\n\
             panic :- emp(E,D,S) & bad(E).",
        )
        .unwrap();
        let d = DeltaPlanSet::compile(&p);
        assert_eq!(d.polarity("emp"), Some(Polarity::Positive));
        assert_eq!(d.polarity("dept"), Some(Polarity::Negative));
        assert!(!d.is_flat());

        // Negating the helper flips both signs.
        let p = parse_program(
            "ok(E) :- emp(E,D,S) & dept(D).\n\
             panic :- emp(E,D,S) & not ok(E).",
        )
        .unwrap();
        let d = DeltaPlanSet::compile(&p);
        // emp occurs both positively (panic body) and under the negated
        // helper: mixed.
        assert_eq!(d.polarity("emp"), Some(Polarity::Mixed));
        assert_eq!(d.polarity("dept"), Some(Polarity::Negative));
    }

    #[test]
    fn k_occurrences_yield_k_plans() {
        let p = parse_program("panic :- emp(E,D,S) & emp(F,D,T) & S < T & not dept(D).").unwrap();
        let d = DeltaPlanSet::compile(&p);
        assert_eq!(d.plan_count("emp"), 2);
        assert_eq!(d.plan_count("dept"), 0, "negated occurrences never seed");
        assert_eq!(positive_edb_preds(&d).len(), 1);
    }

    #[test]
    fn eligibility_gates() {
        let p = parse_program("panic :- emp(E,D,S) & not dept(D).").unwrap();
        let d = DeltaPlanSet::compile(&p);
        let ins = |pred, t| DeltaSet::from_update(&Update::insert(pred, t));
        let del = |pred, t| DeltaSet::from_update(&Update::delete(pred, t));
        assert!(d.eligible(&ins("emp", tuple!["a", "toy", 10])));
        // Deleting from a positively-read relation only shrinks the set of
        // panic derivations: eligible, decided with zero seeds.
        let shrink = del("emp", tuple!["a", "toy", 10]);
        assert!(d.eligible(&shrink));
        let v = d.check(&emp_db(), &shrink);
        assert!(!v.violated);
        assert_eq!(v.seeds_joined, 0);
        assert!(
            !d.eligible(&ins("dept", tuple!["toy"])),
            "negative polarity"
        );
        assert!(
            !d.eligible(&del("dept", tuple!["toy"])),
            "negative polarity"
        );
        assert!(
            d.eligible(&del("salRange", tuple!["x"])),
            "changes to unread relations are trivially decidable"
        );
        // A batch mixing an eligible insert with a read-relation delete is out.
        let mixed = DeltaSet::from_updates(&[
            Update::insert("emp", tuple!["a", "toy", 10]),
            Update::delete("dept", tuple!["toy"]),
        ]);
        assert!(!d.eligible(&mixed));
    }

    #[test]
    fn non_flat_programs_fall_back_unless_untouched() {
        let p = parse_program(
            "bad(E) :- emp(E,D,S) & not dept(D).\n\
             panic :- bad(E).",
        )
        .unwrap();
        let d = DeltaPlanSet::compile(&p);
        assert!(!d.eligible(&DeltaSet::from_update(&Update::insert(
            "emp",
            tuple!["a", "toy", 10]
        ))));
        assert!(d.eligible(&DeltaSet::from_update(&Update::insert(
            "unrelated",
            tuple![1]
        ))));
    }

    #[test]
    fn seeded_check_finds_violations_through_the_new_tuple() {
        let p = parse_program("panic :- emp(E,D,S) & not dept(D).").unwrap();
        let d = DeltaPlanSet::compile(&p);
        let db = emp_db();

        // Dangling department: violation.
        let bad = DeltaSet::from_update(&Update::insert("emp", tuple!["b", "ghost", 5]));
        assert!(d.eligible(&bad));
        let v = d.check(&db, &bad);
        assert!(v.violated);
        assert_eq!(v.seeds_joined, 1);

        // Known department: fine.
        let ok = DeltaSet::from_update(&Update::insert("emp", tuple!["b", "toy", 5]));
        let v = d.check(&db, &ok);
        assert!(!v.violated);
        assert_eq!(v.seeds_joined, 1);

        // Re-inserting a present tuple seeds nothing.
        let noop = DeltaSet::from_update(&Update::insert("emp", tuple!["a", "toy", 10]));
        let v = d.check(&db, &noop);
        assert!(!v.violated);
        assert_eq!(v.seeds_joined, 0);
    }

    #[test]
    fn delta_and_snapshot_agree_on_the_running_example() {
        // Example 2.1-shaped self-join plus the referential constraint,
        // checked both ways over a small stream of inserts.
        let p = parse_program("panic :- emp(E,D,S) & emp(E,F,T) & D <> F.").unwrap();
        let d = DeltaPlanSet::compile(&p);
        let engine = crate::Engine::new(p).unwrap();
        let mut db = emp_db();
        let stream = [
            Update::insert("emp", tuple!["b", "toy", 7]),
            Update::insert("emp", tuple!["a", "shoe", 9]), // a now in two depts
            Update::insert("emp", tuple!["c", "toy", 1]),
        ];
        for u in stream {
            let delta = DeltaSet::from_update(&u);
            assert!(d.eligible(&delta));
            let seeded = d.check(&db, &delta).violated;
            let mut post = db.clone();
            post.apply(&u).unwrap();
            let snapshot = engine.run(&post).derives_panic();
            let pre = engine.run(&db).derives_panic();
            assert_eq!(pre || seeded, snapshot, "update {u}");
            if !pre {
                assert_eq!(seeded, snapshot, "standing assumption holds: {u}");
            }
            db = post;
        }
    }

    #[test]
    fn self_join_violations_need_the_overlay() {
        // Two Δ-tuples that only violate *together*: the seed for one must
        // see the other through the overlay, not the base store.
        let p = parse_program("panic :- emp(E,D,S) & emp(F,D,T) & S < T.").unwrap();
        let d = DeltaPlanSet::compile(&p);
        let mut db = Database::new();
        db.declare("emp", 3, Locality::Local).unwrap();
        let batch = DeltaSet::from_updates(&[
            Update::insert("emp", tuple!["a", "toy", 10]),
            Update::insert("emp", tuple!["b", "toy", 20]),
        ]);
        assert!(d.eligible(&batch));
        let v = d.check(&db, &batch);
        assert!(v.violated);
        assert_eq!(v.seeds_joined, 4, "2 seeds × 2 occurrence plans");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::join::{eval_rule, Store};
    use ccpi_parser::{parse_program, parse_rule};
    use ccpi_storage::{tuple, Locality, Update};
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Arg {
        Var(usize),
        Const(i64),
    }

    fn arg() -> impl Strategy<Value = Arg> {
        prop_oneof![
            (0usize..4).prop_map(Arg::Var),
            (0usize..4).prop_map(Arg::Var),
            (0usize..4).prop_map(Arg::Var),
            (0i64..4).prop_map(Arg::Const),
        ]
    }

    const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
    const OPS: [&str; 6] = ["<", "<=", ">", ">=", "=", "<>"];

    fn render(a: &Arg) -> String {
        match a {
            Arg::Var(i) => VARS[*i].to_string(),
            Arg::Const(c) => c.to_string(),
        }
    }

    /// Renders a random safe body over `p/2` (the updated relation — the
    /// first atom is forced to `p`, so every case has 1–3 occurrences),
    /// `q/2`, an optional comparison, and an optional negated `n/2`.
    fn body_src(
        atoms: &[(bool, Arg, Arg)],
        cmp: &Option<(usize, usize, usize)>,
        neg: &Option<(usize, usize)>,
    ) -> (String, Vec<String>) {
        let mut bound: Vec<usize> = Vec::new();
        let mut body: Vec<String> = Vec::new();
        for (i, (q, a, b)) in atoms.iter().enumerate() {
            for arg in [a, b] {
                if let Arg::Var(v) = arg {
                    if !bound.contains(v) {
                        bound.push(*v);
                    }
                }
            }
            let pred = if i == 0 || !*q { "p" } else { "q" };
            body.push(format!("{pred}({},{})", render(a), render(b)));
        }
        let pick = |i: usize| -> String {
            if bound.is_empty() {
                "0".to_string()
            } else {
                VARS[bound[i % bound.len()]].to_string()
            }
        };
        if let Some((l, op, r)) = cmp {
            body.push(format!("{} {} {}", pick(*l), OPS[op % OPS.len()], pick(*r)));
        }
        if let Some((a, b)) = neg {
            body.push(format!("not n({},{})", pick(*a), pick(*b)));
        }
        let heads = vec![pick(0), pick(1)];
        (body.join(" & "), heads)
    }

    fn load(store: &mut Store, entries: &[(&str, &std::collections::BTreeSet<(i64, i64)>)]) {
        for (name, tuples) in entries {
            let sym = Sym::new(name);
            for (a, b) in tuples.iter() {
                store.insert(&sym, 2, tuple![*a, *b]);
            }
            store.rels.entry(sym).or_insert_with(|| Relation::new(2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Over random flat constraints with 1–3 occurrences of the
        /// updated relation `p`:
        ///
        /// 1. the seeded delta check and the snapshot full check give the
        ///    same verdict whenever the pre-update database satisfies the
        ///    constraint (the standing assumption), and never disagree
        ///    beyond pre-existing violations (`pre ∨ delta = post`);
        /// 2. per occurrence, the seeded plan derives exactly the tuples
        ///    the reference interpreter derives on the *materialized*
        ///    post-update store with that occurrence delta-designated —
        ///    so the unioned panic-tuple sets coincide, not just the
        ///    boolean verdicts.
        #[test]
        fn seeded_delta_check_equals_snapshot_full_check(
            atoms in prop::collection::vec((any::<bool>(), arg(), arg()), 1..=3),
            cmp in prop::option::of((0usize..8, 0usize..6, 0usize..8)),
            neg in prop::option::of((0usize..8, 0usize..8)),
            p_tuples in prop::collection::btree_set((0i64..4, 0i64..4), 0..8),
            q_tuples in prop::collection::btree_set((0i64..4, 0i64..4), 0..8),
            n_tuples in prop::collection::btree_set((0i64..4, 0i64..4), 0..6),
            delta_tuples in prop::collection::btree_set((0i64..4, 0i64..4), 1..5),
        ) {
            let (body, heads) = body_src(&atoms, &cmp, &neg);

            // --- Part 1: verdict equivalence through the public API. ---
            let program = parse_program(&format!("panic :- {body}.")).unwrap();
            let plans = DeltaPlanSet::compile(&program);
            let engine = crate::Engine::new(program).unwrap();

            let mut db = ccpi_storage::Database::new();
            for name in ["p", "q", "n"] {
                db.declare(name, 2, Locality::Local).unwrap();
            }
            for (name, tuples) in [("p", &p_tuples), ("q", &q_tuples), ("n", &n_tuples)] {
                for (a, b) in tuples.iter() {
                    db.insert(name, tuple![*a, *b]).unwrap();
                }
            }
            let updates: Vec<Update> = delta_tuples
                .iter()
                .map(|(a, b)| Update::insert("p", tuple![*a, *b]))
                .collect();
            let delta = DeltaSet::from_updates(&updates);
            prop_assert!(plans.eligible(&delta), "p occurs only positively");

            let mut post = db.clone();
            for u in &updates {
                post.apply(u).unwrap();
            }
            let pre_violated = engine.run(&db).derives_panic();
            let post_violated = engine.run(&post).derives_panic();
            let seeded = plans.check(&db, &delta).violated;
            prop_assert_eq!(pre_violated || seeded, post_violated, "body: {}", body);
            if !pre_violated {
                prop_assert_eq!(seeded, post_violated, "body: {}", body);
            }

            // --- Part 2: derivation-set equality per occurrence. ---
            let h_rule = parse_rule(&format!("h({},{}) :- {body}.", heads[0], heads[1])).unwrap();
            let mut base = Store::default();
            load(&mut base, &[("p", &p_tuples), ("q", &q_tuples), ("n", &n_tuples)]);
            let fresh: Vec<Tuple> = delta_tuples
                .iter()
                .filter(|(a, b)| !p_tuples.contains(&(*a, *b)))
                .map(|(a, b)| tuple![*a, *b])
                .collect();
            let p_sym = Sym::new("p");
            let mut post_store = base.clone();
            let mut delta_store = Store::default();
            delta_store.rels.insert(p_sym.clone(), Relation::new(2));
            for t in &fresh {
                post_store.insert(&p_sym, 2, t.clone());
                delta_store.insert(&p_sym, 2, t.clone());
            }
            let mut overlay = Overlay::default();
            overlay.add(p_sym.clone(), &fresh);

            let mut seeded_union: Vec<Tuple> = Vec::new();
            let mut reference_union: Vec<Tuple> = Vec::new();
            for (occ, atom) in h_rule.positive_subgoals().enumerate() {
                if atom.pred != p_sym {
                    continue;
                }
                let plan = JoinPlan::compile_seeded(&h_rule, occ);
                plan.eval_seeded(&base, &overlay, &fresh, &mut |t| seeded_union.push(t));
                eval_rule(&h_rule, &post_store, Some((&delta_store, occ)), &mut |t| {
                    reference_union.push(t)
                });
            }
            seeded_union.sort();
            seeded_union.dedup();
            reference_union.sort();
            reference_union.dedup();
            prop_assert_eq!(seeded_union, reference_union, "body: {}", body);
        }
    }
}
