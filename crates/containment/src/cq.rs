//! Containment of pure conjunctive queries and unions thereof.
//!
//! * Chandra–Merlin \[1977\]: `Q₁ ⊆ Q₂` iff a containment mapping exists from
//!   `Q₂` to `Q₁` (NP-complete; "since constraints tend to be short, the
//!   exponential complexity … may not present a bar to solution" — §3).
//! * Sagiv–Yannakakis \[1981\]: for unions of CQs, `⋃ᵢ Pᵢ ⊆ ⋃ⱼ Qⱼ` iff each
//!   `Pᵢ` is contained in **some single** `Qⱼ` — the union collapses, which
//!   is exactly what *fails* once arithmetic comparisons appear
//!   (Example 5.3's forbidden intervals; see [`crate::thm51`]).

use crate::mapping::mapping_exists;
use ccpi_ir::{Cq, IrError};

/// Validates that a CQ is "pure": no negation, no comparisons.
fn check_pure(q: &Cq) -> Result<(), IrError> {
    if !q.is_negation_free() {
        return Err(IrError::UnexpectedNegation);
    }
    if !q.is_arithmetic_free() {
        return Err(IrError::UnexpectedArithmetic);
    }
    Ok(())
}

/// Chandra–Merlin containment `q1 ⊆ q2` for pure CQs.
pub fn cq_contained(q1: &Cq, q2: &Cq) -> Result<bool, IrError> {
    check_pure(q1)?;
    check_pure(q2)?;
    Ok(mapping_exists(q2, q1))
}

/// `q1 ⊆ q2_union` for pure CQs: by Sagiv–Yannakakis, containment in a
/// union of CQs is containment in one member.
pub fn cq_contained_in_union(q1: &Cq, q2_union: &[Cq]) -> Result<bool, IrError> {
    check_pure(q1)?;
    for q2 in q2_union {
        check_pure(q2)?;
    }
    Ok(q2_union.iter().any(|q2| mapping_exists(q2, q1)))
}

/// Union-vs-union containment (member-wise, Sagiv–Yannakakis).
pub fn ucq_contained(u1: &[Cq], u2: &[Cq]) -> Result<bool, IrError> {
    for q1 in u1 {
        if !cq_contained_in_union(q1, u2)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Two pure CQs are equivalent iff they contain each other.
pub fn cq_equivalent(q1: &Cq, q2: &Cq) -> Result<bool, IrError> {
    Ok(cq_contained(q1, q2)? && cq_contained(q2, q1)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{derives, freeze};
    use ccpi_parser::parse_cq;
    use proptest::prelude::*;

    fn cq(src: &str) -> Cq {
        parse_cq(src).unwrap()
    }

    #[test]
    fn more_subgoals_contained_in_fewer() {
        // r(U,V) & r(V,U) ⊆ r(A,B) but not conversely.
        let tight = cq("panic :- r(U,V) & r(V,U).");
        let loose = cq("panic :- r(A,B).");
        assert!(cq_contained(&tight, &loose).unwrap());
        assert!(!cq_contained(&loose, &tight).unwrap());
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let a = cq("panic :- emp(E,sales) & emp(E,accounting).");
        let b = cq("panic :- emp(X,sales) & emp(X,accounting).");
        assert!(cq_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn redundant_subgoals_are_equivalent() {
        // p(X,Y) & p(X,Z) ≡ p(X,Y) (Z projects away; head 0-ary).
        let a = cq("panic :- p(X,Y) & p(X,Z).");
        let b = cq("panic :- p(X,Y).");
        assert!(cq_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn head_variables_matter() {
        let a = cq("q(X) :- p(X,Y).");
        let b = cq("q(Y) :- p(X,Y).");
        assert!(!cq_contained(&a, &b).unwrap());
        assert!(!cq_contained(&b, &a).unwrap());
    }

    #[test]
    fn constants_break_containment() {
        let sales = cq("panic :- emp(E,sales).");
        let any = cq("panic :- emp(E,D).");
        assert!(cq_contained(&sales, &any).unwrap());
        assert!(!cq_contained(&any, &sales).unwrap());
    }

    #[test]
    fn union_containment_is_member_wise() {
        let q = cq("panic :- emp(E,sales).");
        let u = vec![cq("panic :- emp(E,accounting)."), cq("panic :- emp(E,D).")];
        assert!(cq_contained_in_union(&q, &u).unwrap());
        let u2 = vec![
            cq("panic :- emp(E,accounting)."),
            cq("panic :- emp(E,marketing)."),
        ];
        assert!(!cq_contained_in_union(&q, &u2).unwrap());
    }

    #[test]
    fn ucq_containment() {
        let u1 = vec![
            cq("panic :- emp(E,sales)."),
            cq("panic :- emp(E,accounting)."),
        ];
        let u2 = vec![cq("panic :- emp(E,D).")];
        assert!(ucq_contained(&u1, &u2).unwrap());
        assert!(!ucq_contained(&u2, &u1).unwrap());
        assert!(ucq_contained(&[], &u1).unwrap()); // empty union ⊆ anything
    }

    #[test]
    fn rejects_non_pure_queries() {
        let neg = cq("panic :- p(X) & not q(X).");
        let arith = cq("panic :- p(X) & X < 5.");
        let pure = cq("panic :- p(X).");
        assert!(matches!(
            cq_contained(&neg, &pure),
            Err(IrError::UnexpectedNegation)
        ));
        assert!(matches!(
            cq_contained(&pure, &arith),
            Err(IrError::UnexpectedArithmetic)
        ));
    }

    /// Random pure CQs: the mapping test must agree with the canonical-
    /// database semantics (Chandra–Merlin's theorem itself, checked
    /// empirically): q1 ⊆ q2 iff q2 derives the frozen head on freeze(q1).
    fn small_cq() -> impl Strategy<Value = Cq> {
        // Up to 3 subgoals over predicates p/2, q/1 with up to 3 vars.
        let atom = prop_oneof![
            ((0usize..3), (0usize..3)).prop_map(|(a, b)| format!("p(V{a},V{b})")),
            (0usize..3).prop_map(|a| format!("q(V{a})")),
        ];
        prop::collection::vec(atom, 1..4).prop_map(|atoms| {
            let src = format!("panic :- {}.", atoms.join(" & "));
            parse_cq(&src).unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn mapping_test_agrees_with_canonical_semantics(q1 in small_cq(), q2 in small_cq()) {
            let by_mapping = cq_contained(&q1, &q2).unwrap();
            let f = freeze(&q1);
            let by_semantics = derives(&q2, &f.db, &f.head);
            prop_assert_eq!(by_mapping, by_semantics);
        }

        #[test]
        fn containment_is_reflexive_and_transitive(
            q1 in small_cq(), q2 in small_cq(), q3 in small_cq()
        ) {
            prop_assert!(cq_contained(&q1, &q1).unwrap());
            if cq_contained(&q1, &q2).unwrap() && cq_contained(&q2, &q3).unwrap() {
                prop_assert!(cq_contained(&q1, &q3).unwrap());
            }
        }
    }
}
