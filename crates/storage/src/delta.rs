//! Δ-sets: the net tuple changes carried by one update or one batch.
//!
//! A [`DeltaSet`] summarises a sequence of [`Update`]s per relation: which
//! tuples were inserted and which relations saw any deletion. It is the
//! currency of the delta-seeded stage-4 path — the datalog layer seeds its
//! per-occurrence delta plans from the inserted tuples, and the manager's
//! eligibility analysis consults the delete markers to decide when the
//! seeded path is sound (inserts into positively-occurring relations) versus
//! when it must fall back to a full post-update snapshot.

use crate::tuple::Tuple;
use crate::update::Update;
use ccpi_ir::Sym;
use std::collections::{BTreeMap, BTreeSet};

/// The per-relation tuple changes of one update batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSet {
    /// Inserted tuples per relation, deduplicated, in first-seen order.
    inserts: BTreeMap<Sym, Vec<Tuple>>,
    /// Relations with at least one deletion in the batch.
    deleted: BTreeSet<Sym>,
}

impl DeltaSet {
    /// An empty Δ-set.
    pub fn new() -> Self {
        DeltaSet::default()
    }

    /// The Δ-set of a single update.
    pub fn from_update(update: &Update) -> Self {
        let mut d = DeltaSet::new();
        d.record(update);
        d
    }

    /// The Δ-set of a batch, in order.
    pub fn from_updates(updates: &[Update]) -> Self {
        let mut d = DeltaSet::new();
        for u in updates {
            d.record(u);
        }
        d
    }

    /// Records one more update into the set.
    pub fn record(&mut self, update: &Update) {
        match update {
            Update::Insert { pred, tuple } => {
                let ts = self.inserts.entry(pred.clone()).or_default();
                if !ts.contains(tuple) {
                    ts.push(tuple.clone());
                }
            }
            Update::Delete { pred, .. } => {
                self.deleted.insert(pred.clone());
            }
        }
    }

    /// The tuples inserted into `pred` (empty slice if none).
    pub fn inserted(&self, pred: &str) -> &[Tuple] {
        self.inserts.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Relations that received inserts, with their tuples.
    pub fn inserts(&self) -> impl Iterator<Item = (&Sym, &[Tuple])> {
        self.inserts.iter().map(|(p, ts)| (p, ts.as_slice()))
    }

    /// Every relation touched by the batch (inserts or deletes).
    pub fn touched_preds(&self) -> BTreeSet<&Sym> {
        self.inserts.keys().chain(self.deleted.iter()).collect()
    }

    /// `true` when the batch touches `pred` at all.
    pub fn touches(&self, pred: &str) -> bool {
        self.inserts.contains_key(pred) || self.deleted.contains(pred)
    }

    /// `true` when the batch deletes from `pred`.
    pub fn deletes_from(&self, pred: &str) -> bool {
        self.deleted.contains(pred)
    }

    /// `true` when no relation sees a deletion.
    pub fn is_insert_only(&self) -> bool {
        self.deleted.is_empty()
    }

    /// Number of distinct inserted tuples across all relations.
    pub fn insert_count(&self) -> usize {
        self.inserts.values().map(Vec::len).sum()
    }

    /// `true` when the batch recorded no changes at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deleted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn records_inserts_per_pred_and_dedups() {
        let d = DeltaSet::from_updates(&[
            Update::insert("emp", tuple!["a", "toy", 10]),
            Update::insert("emp", tuple!["b", "toy", 20]),
            Update::insert("emp", tuple!["a", "toy", 10]),
            Update::insert("dept", tuple!["toy"]),
        ]);
        assert_eq!(d.inserted("emp").len(), 2);
        assert_eq!(d.inserted("dept").len(), 1);
        assert_eq!(d.inserted("salRange").len(), 0);
        assert_eq!(d.insert_count(), 3);
        assert!(d.is_insert_only());
        assert!(d.touches("emp"));
        assert!(!d.touches("salRange"));
    }

    #[test]
    fn deletes_mark_the_pred_without_storing_tuples() {
        let d = DeltaSet::from_updates(&[
            Update::insert("emp", tuple!["a", "toy", 10]),
            Update::delete("dept", tuple!["toy"]),
        ]);
        assert!(!d.is_insert_only());
        assert!(d.deletes_from("dept"));
        assert!(!d.deletes_from("emp"));
        assert!(d.touches("dept"));
        assert_eq!(d.touched_preds().len(), 2);
    }

    #[test]
    fn empty_set() {
        let d = DeltaSet::new();
        assert!(d.is_empty());
        assert!(d.is_insert_only());
        assert_eq!(d.insert_count(), 0);
    }
}
